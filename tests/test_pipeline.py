"""Tests for the iFDK pipeline: config, decomposition, buffers, tracing, perf model."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bench import PROBLEM_4K, PROBLEM_8K
from repro.core import default_geometry_for_problem
from repro.core.types import ReconstructionProblem
from repro.gpusim import TESLA_V100
from repro.pipeline import (
    ABCI_MICROBENCHMARKS,
    BufferClosed,
    CircularBuffer,
    Decomposition,
    IFDKConfig,
    IFDKPerformanceModel,
    PipelineTracer,
    choose_grid,
    subvolume_bytes,
    summarize_events,
)


@pytest.fixture()
def config(small_geometry) -> IFDKConfig:
    return IFDKConfig(geometry=small_geometry, rows=4, columns=2)


class TestChooseGrid:
    def test_4k_problem_needs_r32(self):
        # Section 5.3: R=32 for the 4096^3 volume with 8 GB sub-volumes.
        rows, columns = choose_grid(PROBLEM_4K, 128)
        assert rows == 32
        assert columns == 4

    def test_8k_problem_needs_r256(self):
        rows, columns = choose_grid(PROBLEM_8K, 2048)
        assert rows == 256
        assert columns == 8

    def test_r_minimized_when_volume_small(self):
        problem = ReconstructionProblem(nu=512, nv=512, np_=256, nx=256, ny=256, nz=256)
        rows, columns = choose_grid(problem, 16)
        assert rows == 1 and columns == 16

    def test_infeasible_raises(self):
        huge = ReconstructionProblem(
            nu=2048, nv=2048, np_=4096, nx=16384, ny=16384, nz=16384
        )
        with pytest.raises(ValueError):
            choose_grid(huge, 2)  # 16 TB volume over 2 GPUs cannot fit

    def test_subvolume_bytes(self):
        assert subvolume_bytes(PROBLEM_4K, 32) == 4 * 4096**3 // 32


class TestIFDKConfig:
    def test_derived_quantities(self, config):
        assert config.n_ranks == 8
        assert config.n_gpus == 8
        assert config.n_nodes == 2
        assert config.projections_per_rank == config.geometry.np_ // 8
        assert config.projections_per_column == config.geometry.np_ // 2
        assert config.slab_thickness == config.geometry.nz // 4
        assert config.problem.np_ == config.geometry.np_

    def test_rejects_indivisible_projections(self, small_geometry):
        with pytest.raises(ValueError):
            IFDKConfig(geometry=small_geometry, rows=5, columns=2)

    def test_rejects_indivisible_slabs(self):
        geo = default_geometry_for_problem(nu=32, nv=32, np_=12, nx=16, ny=16, nz=30)
        with pytest.raises(ValueError):
            IFDKConfig(geometry=geo, rows=4, columns=3)

    def test_device_memory_validation(self):
        big = default_geometry_for_problem(nu=64, nv=64, np_=8, nx=2048, ny=2048, nz=2048)
        config = IFDKConfig(geometry=big, rows=1, columns=8)
        with pytest.raises(ValueError):
            config.validate_device_memory()


class TestDecomposition:
    def test_complete_partition(self, config):
        Decomposition(config).verify_complete()

    def test_rank_assignment_matches_figure3(self, config):
        dec = Decomposition(config)
        a = dec.assignment(5)  # column-major: rank 5 = row 1, column 1
        assert (a.row, a.column) == (1, 1)
        assert a.z_range == (8, 16)
        per_column = config.projections_per_column
        assert a.column_projections[0] == per_column

    def test_round_indices_cover_column_block(self, config):
        dec = Decomposition(config)
        start, stop = dec.column_block(1)
        seen = []
        for round_index in range(config.projections_per_rank):
            seen.extend(dec.allgather_round_indices(1, round_index))
        assert sorted(seen) == list(range(start, stop))

    def test_owned_projections_interleave_rows(self, config):
        dec = Decomposition(config)
        r0 = dec.projections_for_rank(0, 0)
        r1 = dec.projections_for_rank(1, 0)
        assert set(r0).isdisjoint(r1)
        assert r1[0] == r0[0] + 1

    def test_bounds_checked(self, config):
        dec = Decomposition(config)
        with pytest.raises(ValueError):
            dec.column_block(99)
        with pytest.raises(ValueError):
            dec.z_range_for_row(-1)
        with pytest.raises(ValueError):
            dec.allgather_round_indices(0, 10_000)


class TestCircularBuffer:
    def test_fifo_order(self):
        buf = CircularBuffer(capacity=4)
        for i in range(3):
            buf.put(i)
        assert [buf.get() for _ in range(3)] == [0, 1, 2]

    def test_close_drains_then_none(self):
        buf = CircularBuffer(capacity=4)
        buf.put("a")
        buf.close()
        assert buf.get() == "a"
        assert buf.get() is None

    def test_put_after_close_raises(self):
        buf = CircularBuffer(capacity=2)
        buf.close()
        with pytest.raises(BufferClosed):
            buf.put(1)

    def test_backpressure_blocks_until_consumed(self):
        buf = CircularBuffer(capacity=1)
        buf.put(0)
        release_times = []

        def consumer():
            time.sleep(0.05)
            buf.get()
            release_times.append(time.perf_counter())

        thread = threading.Thread(target=consumer)
        thread.start()
        start = time.perf_counter()
        buf.put(1)  # must wait for the consumer
        elapsed = time.perf_counter() - start
        thread.join()
        assert elapsed >= 0.04

    def test_iteration(self):
        buf = CircularBuffer(capacity=8)
        for i in range(5):
            buf.put(i)
        buf.close()
        assert list(buf) == [0, 1, 2, 3, 4]

    def test_statistics(self):
        buf = CircularBuffer(capacity=4)
        buf.put(1)
        buf.put(2)
        buf.get()
        assert buf.total_put == 2 and buf.total_got == 1
        assert buf.high_watermark == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CircularBuffer(capacity=0)


class TestTracing:
    def test_span_records_duration(self):
        tracer = PipelineTracer(rank=0)
        with tracer.span("work", payload_bytes=10):
            time.sleep(0.01)
        events = tracer.events()
        assert len(events) == 1
        assert events[0].duration >= 0.009
        assert tracer.stage_seconds("work") >= 0.009

    def test_overlap_delta_greater_than_one_for_parallel_stages(self):
        tracer = PipelineTracer(rank=0)
        # Two fully-overlapping synthetic events.
        tracer.record("a", 100.0, 101.0)
        tracer.record("b", 100.0, 101.0)
        assert tracer.overlap_delta() == pytest.approx(2.0)

    def test_overlap_delta_one_for_serial_stages(self):
        tracer = PipelineTracer(rank=0)
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 1.0, 2.0)
        assert tracer.overlap_delta() == pytest.approx(1.0)

    def test_summarize_events(self):
        tracer = PipelineTracer(rank=3)
        tracer.record("x", 0.0, 1.0, payload_bytes=5)
        tracer.record("x", 2.0, 2.5, payload_bytes=5)
        summary = summarize_events(tracer.events())
        assert summary["x"].events == 2
        assert summary["x"].total_seconds == pytest.approx(1.5)
        assert summary["x"].payload_bytes == 10


class TestPerformanceModel:
    @pytest.fixture(scope="class")
    def model(self):
        return IFDKPerformanceModel(ABCI_MICROBENCHMARKS)

    def test_store_matches_paper_anchor(self, model):
        # 256 GB at 28.5 GB/s ~ 9.0 s (Section 5.3.3).
        assert model.t_store(PROBLEM_4K) == pytest.approx(9.0, rel=0.08)

    def test_d2h_matches_paper_anchor(self, model):
        # Paper: T_D2H ~ 2.6 s for the 4K volume with R = 32.
        assert model.t_d2h(PROBLEM_4K, rows=32) == pytest.approx(2.6, rel=0.1)

    def test_reduce_matches_paper_anchor(self, model):
        # Reduce of an 8 GB sub-volume ~ 2.7 s.
        assert model.t_reduce(PROBLEM_4K, rows=32, columns=4) == pytest.approx(2.7, rel=0.15)

    def test_reduce_zero_when_single_column(self, model):
        assert model.t_reduce(PROBLEM_4K, rows=32, columns=1) == 0.0

    def test_compute_term_shrinks_with_more_gpus(self, model):
        t_small = model.breakdown(PROBLEM_4K, rows=32, columns=1).t_compute
        t_large = model.breakdown(PROBLEM_4K, rows=32, columns=64).t_compute
        assert t_large < t_small / 10

    def test_post_term_independent_of_columns(self, model):
        a = model.breakdown(PROBLEM_4K, rows=32, columns=2)
        b = model.breakdown(PROBLEM_4K, rows=32, columns=32)
        assert a.t_d2h == pytest.approx(b.t_d2h)
        assert a.t_store == pytest.approx(b.t_store)

    def test_table5_compute_breakdown_shape(self, model):
        # 4K with 32 GPUs (R=32, C=1): T_bp dominates and T_flt is tiny (Table 5).
        b = model.breakdown(PROBLEM_4K, rows=32, columns=1)
        assert b.t_flt < 3.0
        assert b.t_bp > b.t_allgather
        assert b.t_compute >= b.t_bp
        assert b.delta >= 1.0

    def test_4k_runtime_order_of_magnitude(self, model):
        # Paper: the 4K problem completes within ~30 s on 2048 GPUs (including I/O).
        runtime = model.runtime(PROBLEM_4K, rows=32, columns=64)
        assert 15.0 < runtime < 45.0

    def test_8k_runtime_order_of_magnitude(self, model):
        # Paper: the 8K problem completes within ~2 minutes on 2048 GPUs.
        runtime = model.runtime(PROBLEM_8K, rows=256, columns=8)
        assert 80.0 < runtime < 160.0

    def test_gups_increase_with_gpus(self, model):
        # Figure 6 shape: throughput grows with GPU count and eventually
        # saturates once T_post (D2H + reduce + store) dominates.
        series = [
            model.gups(PROBLEM_4K, rows=32, columns=c) for c in (1, 2, 4, 8, 16, 32, 64)
        ]
        assert all(b >= a * 0.999 for a, b in zip(series, series[1:]))
        assert series[-1] > 3 * series[0]

    def test_invalid_grid_rejected(self, model):
        with pytest.raises(ValueError):
            model.breakdown(PROBLEM_4K, rows=0, columns=1)

    def test_from_components_builds_consistent_model(self):
        model = IFDKPerformanceModel.from_components(problem=PROBLEM_4K, kernel="L1-Tran")
        assert model.micro.th_bp > 0
        assert np.isfinite(model.runtime(PROBLEM_4K, rows=32, columns=4))

    def test_microbenchmark_validation(self):
        with pytest.raises(ValueError):
            ABCI_MICROBENCHMARKS.scaled(th_bp=-1.0)
