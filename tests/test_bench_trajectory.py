"""The bench trajectory: schema of the tracked record + the regression gate.

``BENCH_backend_speed.json`` is no longer a single overwritten snapshot —
every benchmark run appends a history entry (git sha, UTC date, host cpu
count, per-backend GUPS).  This suite is the tier-1 tripwire over that
trajectory: the checked-in record must validate, and its newest entry must
not have regressed more than 25% against the most recent earlier entry
measured on the same host profile.  Unit tests pin the comparison
semantics (profile gating, threshold edges, short histories) against
synthetic histories so the tripwire itself cannot rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.trajectory import (
    REGRESSION_THRESHOLD,
    check_regression,
    format_trajectory,
    load_record,
    trajectory_entry,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_backend_speed.json"


def _entry(sha, gups, *, cpus=4, date="2026-08-08"):
    return {"sha": sha, "date": date, "cpus": cpus, "gups": gups}


# --------------------------------------------------------------------- #
# The checked-in record: schema + the actual regression gate.
# --------------------------------------------------------------------- #

def test_checked_in_record_validates():
    record = load_record(RESULT_FILE)
    history = record["history"]
    assert history, "BENCH_backend_speed.json must carry a trajectory"
    latest = history[-1]
    assert set(latest["gups"]) == set(record["backends"]), (
        "the newest history entry must cover exactly the recorded backends"
    )
    for entry in history:
        assert isinstance(entry["sha"], str) and entry["sha"]
        assert isinstance(entry["date"], str) and entry["date"]
        assert isinstance(entry["cpus"], int) and entry["cpus"] >= 1
        assert all(g > 0 for g in entry["gups"].values())


def test_checked_in_record_has_not_regressed():
    """The tier-1 gate: >25% GUPS drop vs the previous same-host entry fails."""
    record = load_record(RESULT_FILE)
    regressions = check_regression(record["history"])
    assert not regressions, "benchmark trajectory regressed:\n" + "\n".join(
        regressions
    )


def test_latest_history_entry_matches_flat_record():
    """The newest entry is the flat record's own numbers, not a stale copy."""
    record = load_record(RESULT_FILE)
    latest = record["history"][-1]
    for name, result in record["backends"].items():
        assert latest["gups"][name] == pytest.approx(result["gups"])
    assert latest["cpus"] == record["cpus"]


# --------------------------------------------------------------------- #
# Comparison semantics on synthetic histories.
# --------------------------------------------------------------------- #

def test_regression_detected_beyond_threshold():
    history = [
        _entry("aaaa", {"vectorized": 1.0, "blocked": 0.9}),
        _entry("bbbb", {"vectorized": 0.70, "blocked": 0.89}),
    ]
    regressions = check_regression(history)
    assert len(regressions) == 1
    assert regressions[0].startswith("vectorized:")
    assert "aaaa -> bbbb" in regressions[0]


def test_drop_at_threshold_is_not_a_regression():
    history = [
        _entry("aaaa", {"vectorized": 1.0}),
        _entry("bbbb", {"vectorized": 1.0 - REGRESSION_THRESHOLD}),
    ]
    assert check_regression(history) == []


def test_comparison_is_gated_on_host_profile():
    # The 1-cpu entry in the middle must not be compared against: the
    # newest 4-cpu entry compares to the older 4-cpu one and passes.
    history = [
        _entry("aaaa", {"vectorized": 1.0}, cpus=4),
        _entry("bbbb", {"vectorized": 0.2}, cpus=1),
        _entry("cccc", {"vectorized": 0.95}, cpus=4),
    ]
    assert check_regression(history) == []
    # ... and a genuine same-profile regression is still caught.
    history.append(_entry("dddd", {"vectorized": 0.5}, cpus=4))
    assert len(check_regression(history)) == 1


def test_no_comparison_cases_pass():
    assert check_regression([]) == []
    assert check_regression([_entry("aaaa", {"vectorized": 1.0})]) == []
    # No prior entry on this host profile at all.
    assert (
        check_regression(
            [
                _entry("aaaa", {"vectorized": 1.0}, cpus=1),
                _entry("bbbb", {"vectorized": 0.1}, cpus=8),
            ]
        )
        == []
    )


def test_new_backend_without_baseline_is_skipped():
    history = [
        _entry("aaaa", {"vectorized": 1.0}),
        _entry("bbbb", {"vectorized": 0.99, "blocked": 0.5}),
    ]
    assert check_regression(history) == []


def test_bad_threshold_rejected():
    with pytest.raises(ValueError):
        check_regression([], threshold=0.0)
    with pytest.raises(ValueError):
        check_regression([], threshold=1.5)


# --------------------------------------------------------------------- #
# Entry construction and record loading.
# --------------------------------------------------------------------- #

def test_trajectory_entry_from_record():
    record = {
        "cpus": 8,
        "backends": {
            "reference": {"seconds": 2.0, "gups": 0.01},
            "vectorized": {"seconds": 0.5, "gups": 0.04},
        },
    }
    entry = trajectory_entry(record, sha="abc1234", date="2026-08-08")
    assert entry == {
        "sha": "abc1234",
        "date": "2026-08-08",
        "cpus": 8,
        "gups": {"reference": 0.01, "vectorized": 0.04},
    }


def test_trajectory_entry_rejects_malformed_records():
    with pytest.raises(ValueError):
        trajectory_entry({"cpus": 1}, sha="a", date="d")
    with pytest.raises(ValueError):
        trajectory_entry(
            {"cpus": 1, "backends": {"reference": {"seconds": 1.0}}},
            sha="a",
            date="d",
        )


def test_load_record_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(ValueError):
        load_record(bad)
    bad.write_text(json.dumps({"no_backends": True}))
    with pytest.raises(ValueError):
        load_record(bad)
    bad.write_text(json.dumps({"backends": {}, "history": {"not": "a list"}}))
    with pytest.raises(ValueError):
        load_record(bad)
    bad.write_text(json.dumps({"backends": {}, "history": [{"sha": "x"}]}))
    with pytest.raises(ValueError):
        load_record(bad)


def test_format_trajectory_reports_regressions():
    record = {
        "benchmark": "hot path",
        "backends": {},
        "history": [
            _entry("aaaa", {"vectorized": 1.0}),
            _entry("bbbb", {"vectorized": 0.5}),
        ],
    }
    report = format_trajectory(record)
    assert "REGRESSION vectorized:" in report
    record["history"][-1]["gups"]["vectorized"] = 0.99
    assert "no regression" in format_trajectory(record)
