"""Tests for the ``repro.analysis`` lint framework.

The fixture corpus under ``tests/data/lint/`` contains known-bad and
known-good snippets per rule; tests assert exact rule ids and line
numbers, suppression behavior, config-driven scoping, baseline
subtraction, and the CLI's exit-code contract (0 clean / 1 findings /
2 bad invocation).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_SCOPES,
    LintConfig,
    RULES,
    SUPPRESSION_RULE,
    lint_paths,
)
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main

pytestmark = pytest.mark.lint

DATA = Path(__file__).resolve().parent / "data" / "lint"


def unscoped_config() -> LintConfig:
    """Every rule enabled everywhere (fixtures live outside default scopes)."""
    config = LintConfig.default()
    for rule in config.rules.values():
        rule.include = []
    return config


def lint_fixture(name: str):
    return lint_paths([DATA / name], config=unscoped_config()).findings


def rule_lines(findings, rule: str):
    return sorted(f.line for f in findings if f.rule == rule)


# --------------------------------------------------------------------- #
# Registry sanity
# --------------------------------------------------------------------- #
def test_rule_registry_matches_scopes():
    assert set(RULES) == set(DEFAULT_SCOPES) == {
        "lock-discipline",
        "spawn-safety",
        "determinism",
        "dtype-discipline",
        "error-contract",
    }


# --------------------------------------------------------------------- #
# Fixture corpus: exact rule ids and line numbers
# --------------------------------------------------------------------- #
def test_lock_discipline_fixture():
    findings = lint_fixture("lock_bad.py")
    assert rule_lines(findings, "lock-discipline") == [17, 20, 25]
    assert {f.rule for f in findings} == {"lock-discipline"}
    symbols = {f.symbol for f in findings}
    assert symbols == {
        "Service.bad_read",
        "Service.bad_write",
        "Service.bad_escaping_closure",
    }
    assert lint_fixture("lock_good.py") == []


def test_spawn_safety_fixture():
    findings = lint_fixture("spawn_bad.py")
    assert rule_lines(findings, "spawn-safety") == [22, 26, 35, 38, 42]
    assert {f.rule for f in findings} == {"spawn-safety"}
    messages = " ".join(f.message for f in findings)
    assert "lambda" in messages
    assert "bound method self.helper" in messages
    assert "nested function 'inner'" in messages
    assert "initializer" in messages
    assert "set_start_method('fork')" in messages
    assert lint_fixture("spawn_good.py") == []


def test_determinism_fixture():
    findings = lint_fixture("determinism_bad.py")
    assert rule_lines(findings, "determinism") == [10, 14, 18, 22]
    assert {f.rule for f in findings} == {"determinism"}
    assert lint_fixture("determinism_good.py") == []


def test_dtype_discipline_fixture():
    findings = lint_fixture("dtype_bad.py")
    assert rule_lines(findings, "dtype-discipline") == [7, 11, 15]
    assert {f.rule for f in findings} == {"dtype-discipline"}
    assert lint_fixture("dtype_good.py") == []


def test_error_contract_fixture():
    bad_cli = lint_fixture("bad_cli.py")
    assert rule_lines(bad_cli, "error-contract") == [4]
    assert bad_cli[0].symbol == "main"
    assert lint_fixture("good_cli.py") == []

    bad_http = lint_fixture("bad_http.py")
    assert rule_lines(bad_http, "error-contract") == [5, 8]
    assert {f.symbol for f in bad_http} == {"Handler.do_GET", "Handler.do_POST"}
    assert lint_fixture("good_http.py") == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
def test_suppression_with_reason_suppresses_and_without_reason_reports():
    findings = lint_fixture("suppressed.py")
    # Line 7's dtype finding is suppressed (reason given); line 11 keeps
    # its dtype finding AND gains a `suppression` meta-finding.
    assert rule_lines(findings, "dtype-discipline") == [11]
    assert rule_lines(findings, SUPPRESSION_RULE) == [11]
    assert len(findings) == 2


def test_suppression_only_covers_named_rules(tmp_path):
    source = tmp_path / "snippet.py"
    source.write_text(
        "import numpy as np\n"
        "\n"
        "def f():\n"
        "    return np.arange(3)  # repro-lint: disable=determinism -- wrong rule\n"
    )
    findings = lint_paths([source], config=unscoped_config()).findings
    assert rule_lines(findings, "dtype-discipline") == [4]


# --------------------------------------------------------------------- #
# Config-driven scoping
# --------------------------------------------------------------------- #
def test_default_scopes_exclude_fixture_paths():
    # Under the default config the fixture tree matches no rule scope
    # except the annotation-driven lock pass (which needs annotations)
    # and the suppression meta-rule — dtype_bad.py therefore lints clean.
    result = lint_paths([DATA / "dtype_bad.py"])
    assert result.findings == []


def test_config_file_overrides_scope_and_disables_rules(tmp_path):
    config_file = tmp_path / "lint.json"
    config_file.write_text(json.dumps({
        "rules": {
            "dtype-discipline": {"include": ["*"]},
            "determinism": {"enabled": False},
        }
    }))
    result = lint_paths(
        [DATA / "dtype_bad.py", DATA / "determinism_bad.py"],
        config_file=config_file,
    )
    rules = {f.rule for f in result.findings}
    assert "dtype-discipline" in rules
    assert "determinism" not in rules


@pytest.mark.parametrize("payload", [
    "not json at all {",
    json.dumps(["a", "list"]),
    json.dumps({"unknown_key": {}}),
    json.dumps({"rules": {"no-such-rule": {}}}),
    json.dumps({"rules": {"determinism": {"enabled": "yes"}}}),
    json.dumps({"rules": {"determinism": {"include": "src"}}}),
])
def test_malformed_config_raises_value_error(tmp_path, payload):
    config_file = tmp_path / "lint.json"
    config_file.write_text(payload)
    with pytest.raises(ValueError):
        lint_paths([DATA / "dtype_bad.py"], config_file=config_file)


def test_missing_path_raises_value_error():
    with pytest.raises(ValueError, match="does not exist"):
        lint_paths([DATA / "no_such_file.py"])


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
def test_baseline_subtracts_known_findings(tmp_path):
    findings = lint_fixture("dtype_bad.py")
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps([f.baseline_key() for f in findings[:2]])
    )
    config = unscoped_config()
    result = lint_paths(
        [DATA / "dtype_bad.py"], config=config, baseline_file=baseline_file
    )
    assert len(result.baselined) == 2
    assert len(result.findings) == 1
    assert result.exit_code() == 1


def test_malformed_baseline_raises_value_error(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps([{"rule": "x"}]))
    with pytest.raises(ValueError, match="baseline"):
        lint_paths([DATA / "dtype_bad.py"], baseline_file=baseline_file)


# --------------------------------------------------------------------- #
# CLI exit codes (repro lint + python -m repro.analysis parity)
# --------------------------------------------------------------------- #
def _scoped_config_file(tmp_path) -> str:
    config_file = tmp_path / "lint.json"
    config_file.write_text(json.dumps({
        "rules": {name: {"include": ["*"]} for name in RULES}
    }))
    return str(config_file)


@pytest.mark.parametrize("entry", [cli_main, analysis_main])
def test_cli_exit_codes(entry, tmp_path, capsys):
    config = _scoped_config_file(tmp_path)
    prefix = ["lint"] if entry is cli_main else []

    assert entry(prefix + [str(DATA / "dtype_good.py")]) == 0

    assert entry(prefix + ["--config", config, str(DATA / "dtype_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "dtype-discipline" in out

    assert entry(prefix + [str(DATA / "no_such_file.py")]) == 2

    bad_config = tmp_path / "bad.json"
    bad_config.write_text("{broken")
    assert entry(
        prefix + ["--config", str(bad_config), str(DATA / "dtype_good.py")]
    ) == 2


def test_cli_requires_paths():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["lint"])
    assert excinfo.value.code == 2


def test_cli_json_format(tmp_path, capsys):
    config = _scoped_config_file(tmp_path)
    code = cli_main([
        "lint", "--config", config, "--format", "json",
        str(DATA / "dtype_bad.py"),
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert [f["line"] for f in payload["findings"]] == [7, 11, 15]
