"""The observability layer: tracer, metrics, exporters, run reports.

Four contracts are locked down here:

* the **no-op path is free**: the null tracer's span sites cost so little
  that instrumented hot loops are indistinguishable from uninstrumented
  ones (micro-bound in tier-1; the strict 2%-of-wall assertion runs with
  the wall-clock suite under ``-m slow``);
* spans **nest correctly across threads**: the parallel backend's worker
  spans parent under the dispatching stage span at 1 and 4 workers, and a
  tracer shared by many threads never loses or aliases a span;
* the **exporters round-trip**: the Chrome trace document validates
  against the trace-event schema and both exporters reload to the same
  spans;
* the **run report and the trace agree**: ``RunResult.report`` stage
  seconds match the span totals in the exported Chrome trace within ±10%
  for every backend, and stage seconds never exceed the wall time.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.api import Session, plan_for_problem
from repro.backends import BACKEND_NAMES
from repro.core.types import ProjectionStack
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    RunReport,
    Span,
    Tracer,
    chrome_trace,
    get_tracer,
    jsonl_lines,
    load_trace,
    summary_tree,
    use_tracer,
    write_trace,
)

pytestmark = pytest.mark.obs

PROBLEM = "48x32x24->24x24x12"


def _stack_for(plan):
    rng = np.random.default_rng(7)
    geometry = plan.geometry
    return ProjectionStack(
        data=rng.standard_normal(
            (geometry.np_, geometry.nv, geometry.nu)
        ).astype(np.float32),
        angles=geometry.angles,
    )


def _traced_run(backend, *, workers=None, problem=PROBLEM):
    plan = plan_for_problem(problem, backend=backend, workers=workers)
    tracer = Tracer()
    result = Session(plan, tracer=tracer).run(_stack_for(plan))
    return plan, tracer, result


# --------------------------------------------------------------------- #
# Tracer core: nesting, records, ambient installation.
# --------------------------------------------------------------------- #

def test_spans_nest_within_a_thread():
    tracer = Tracer()
    with tracer.span("outer", payload_bytes=10, kind="test") as outer:
        with tracer.span("inner") as inner:
            pass
    spans = {span.name: span for span in tracer.spans()}
    assert spans["outer"].parent_id is None
    assert spans["inner"].parent_id == outer.span_id
    assert spans["outer"].payload_bytes == 10
    assert spans["outer"].attrs["kind"] == "test"
    assert spans["inner"].start >= spans["outer"].start
    assert spans["inner"].stop <= spans["outer"].stop
    assert inner.span_id != outer.span_id


def test_span_record_roundtrip_and_malformed_record():
    tracer = Tracer()
    with tracer.span("stage", payload_bytes=3, backend="ref"):
        pass
    span = tracer.spans()[0]
    assert Span.from_record(span.as_record()) == span
    with pytest.raises(ValueError):
        Span.from_record({"name": "no-times"})


def test_ambient_tracer_defaults_to_null_and_restores():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    with use_tracer(tracer):
        assert get_tracer() is tracer
        with use_tracer(None):
            assert get_tracer() is NULL_TRACER
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert not tracer.enabled
    with tracer.span("anything", payload_bytes=99, attr=1):
        pass
    tracer.record("anything", 0.0, 1.0)
    assert len(tracer) == 0
    assert tracer.current_span_id() is None


def test_noop_span_sites_are_cheap():
    """Tier-1 micro-bound: a null span site must cost well under 25 µs.

    The strict "disabled tracing adds < 2% of reconstruction wall time"
    assertion lives in ``test_disabled_tracing_overhead_within_2pct``
    (slow tier) — this bound keeps the no-op path honest without a
    wall-clock flake in the blocking suite.
    """
    tracer = NULL_TRACER
    n = 20_000
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("site"):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < n * 25e-6, (
        f"{n} null span sites took {elapsed:.3f}s ({elapsed / n * 1e6:.1f} "
        "µs each); the no-op path must stay negligible"
    )


def test_tracer_is_thread_safe():
    tracer = Tracer()
    n_threads, n_spans = 8, 200

    def emit(index):
        with use_tracer(tracer):
            for i in range(n_spans):
                with tracer.span("work", worker=index, i=i):
                    pass

    threads = [
        threading.Thread(target=emit, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    spans = tracer.spans()
    assert len(spans) == n_threads * n_spans
    assert len({span.span_id for span in spans}) == len(spans)
    # Per-thread stacks: spans emitted by different threads never parent
    # under each other implicitly.
    assert all(span.parent_id is None for span in spans)


# --------------------------------------------------------------------- #
# Parallel backend: worker spans nest under their stage at 1 and 4 workers.
# --------------------------------------------------------------------- #

@pytest.mark.parallel
@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_worker_spans_nest_under_stages(workers):
    _, tracer, result = _traced_run("parallel", workers=workers)
    by_name = {}
    for span in tracer.spans():
        by_name.setdefault(span.name, []).append(span)
    assert set(by_name) >= {
        "run", "filter", "filter.worker", "backproject", "backproject.worker",
    }
    (filter_span,) = by_name["filter"]
    (backproject_span,) = by_name["backproject"]
    assert all(
        span.parent_id == filter_span.span_id
        for span in by_name["filter.worker"]
    )
    assert all(
        span.parent_id == backproject_span.span_id
        for span in by_name["backproject.worker"]
    )
    workers_seen = {
        span.attrs["worker"] for span in by_name["backproject.worker"]
    }
    assert len(workers_seen) == workers
    assert result.report.traced
    assert result.report.span_count == len(tracer)


# --------------------------------------------------------------------- #
# Exporters: Chrome trace schema + round-trips.
# --------------------------------------------------------------------- #

def test_chrome_trace_schema():
    _, tracer, _ = _traced_run("vectorized")
    document = chrome_trace(tracer)
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    complete = [event for event in events if event["ph"] == "X"]
    metadata = [event for event in events if event["ph"] == "M"]
    assert len(complete) == len(tracer)
    assert metadata, "thread_name metadata events must be present"
    for event in complete:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["args"]["span_id"], int)
    for event in metadata:
        assert event["name"] == "thread_name"
    # The document is pure JSON.
    json.dumps(document)


def test_exporters_roundtrip_and_summary(tmp_path):
    _, tracer, _ = _traced_run("blocked")
    chrome_path = write_trace(tracer, tmp_path / "t.json")
    jsonl_path = write_trace(tracer, tmp_path / "t.jsonl")
    for path in (chrome_path, jsonl_path):
        spans = load_trace(path)
        assert len(spans) == len(tracer)
        assert {span.name for span in spans} == {
            span.name for span in tracer.spans()
        }
    assert jsonl_lines(tracer)[0] == json.dumps(
        {"format": "repro-trace", "version": 1}
    )
    tree = summary_tree(tracer)
    assert "run" in tree and "backproject" in tree


# --------------------------------------------------------------------- #
# Run reports: stage split vs wall time, and report-vs-trace agreement.
# --------------------------------------------------------------------- #

def test_report_stage_seconds_consistent_with_wall():
    _, tracer, result = _traced_run("vectorized")
    report = result.report
    assert report is not None and report.traced
    assert report.gups > 0
    assert report.peak_rss_bytes > 0
    # The measured split can never exceed the wall time, and the two
    # stages must account for the bulk of a reconstruction this small.
    assert 0 < report.stage_sum_seconds <= report.wall_seconds
    assert report.stage_sum_seconds >= 0.5 * report.wall_seconds
    # The run root span is the wall time.
    assert report.stage_seconds["run"] == pytest.approx(
        report.wall_seconds, rel=0.10, abs=5e-3
    )


@pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
def test_report_agrees_with_exported_trace_per_backend(backend, tmp_path):
    """Acceptance pin: report stage seconds vs Chrome-trace span sums, ±10%."""
    workers = 2 if backend == "parallel" else None
    _, tracer, result = _traced_run(backend, workers=workers)
    path = write_trace(tracer, tmp_path / "trace.json", format="chrome")
    spans = load_trace(path)
    by_stage = {}
    for span in spans:
        by_stage[span.name] = by_stage.get(span.name, 0.0) + span.duration
    report = result.report
    for stage, measured in (
        ("filter", report.filter_seconds),
        ("backproject", report.backprojection_seconds),
    ):
        assert by_stage[stage] == pytest.approx(measured, rel=0.10, abs=5e-3), (
            f"{backend}: span sum for {stage!r} diverges from the report"
        )


def test_untraced_run_is_structurally_clean():
    plan = plan_for_problem(PROBLEM, backend="vectorized")
    stack = _stack_for(plan)
    untraced = Session(plan).run(stack)
    traced = Session(plan, tracer=Tracer()).run(stack)
    assert untraced.report is not None
    assert not untraced.report.traced
    assert untraced.report.span_count == 0
    assert untraced.report.stage_seconds == {}
    # Instrumentation must not perturb the numerics.
    np.testing.assert_array_equal(untraced.volume.data, traced.volume.data)


def test_run_report_summary_and_dict():
    _, _, result = _traced_run("reference")
    report = result.report
    payload = report.as_dict()
    json.dumps(payload)
    assert payload["traced"] is True
    assert payload["span_count"] == report.span_count
    text = report.summary()
    assert "wall" in text and "backprojection" in text and "spans" in text
    rebuilt = RunReport(**payload)
    assert rebuilt.stage_sum_seconds == pytest.approx(report.stage_sum_seconds)


# --------------------------------------------------------------------- #
# Metrics registry.
# --------------------------------------------------------------------- #

def test_metrics_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("jobs").inc()
    registry.counter("jobs").inc(2)
    registry.gauge("depth").set(5)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("latency").observe(value)
    snapshot = registry.snapshot()
    assert snapshot["jobs"] == 3
    assert snapshot["depth"] == 5
    assert snapshot["latency_count"] == 4
    assert snapshot["latency_p50"] == pytest.approx(2.0, abs=1.0)
    assert snapshot["latency_max"] == 4.0
    with pytest.raises(ValueError):
        registry.gauge("jobs")  # kind mismatch


def test_null_metrics_registry_is_inert():
    registry = MetricsRegistry(enabled=False)
    registry.counter("jobs").inc()
    registry.histogram("latency").observe(1.0)
    assert registry.snapshot() == {}


# --------------------------------------------------------------------- #
# The strict wall-clock bound (slow tier: wall-clock assertions flake
# under load in the blocking suite; the benchmarks CI job runs them).
# --------------------------------------------------------------------- #

@pytest.mark.slow
@pytest.mark.bench
def test_disabled_tracing_overhead_within_2pct():
    """With tracing disabled, reconstruction wall time stays within 2% of
    the untraced baseline.

    The shipped disabled path *is* the baseline code plus null span sites,
    so the honest measurable quantity is the cost of those sites relative
    to the reconstruction they instrument: count the sites an enabled run
    records, price a site on the null path, and require the total to stay
    under 2% of the measured untraced wall time.
    """
    plan = plan_for_problem("96x64x48->48x48x24", backend="vectorized")
    stack = _stack_for(plan)

    session = Session(plan)
    session.run(stack)  # warm-up: grid caches, FFT plans
    untraced_wall = min(
        Session(plan).run(stack).report.wall_seconds for _ in range(3)
    )

    tracer = Tracer()
    Session(plan, tracer=tracer).run(stack)
    n_sites = len(tracer)

    reps = 2_000
    start = time.perf_counter()
    for _ in range(reps):
        with NULL_TRACER.span("site"):
            pass
    per_site = (time.perf_counter() - start) / reps

    overhead = n_sites * per_site
    assert overhead < 0.02 * untraced_wall, (
        f"{n_sites} null span sites cost {overhead * 1e3:.3f} ms, more than "
        f"2% of the {untraced_wall * 1e3:.1f} ms untraced reconstruction"
    )
