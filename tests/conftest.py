"""Shared fixtures for the test-suite.

Reconstruction is expensive, so the projection stacks and reference volumes
used by many tests are built once per session at a deliberately small scale
(32-48 voxels per side).  Anything that needs a bigger problem builds it
locally and is marked ``slow``.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.analysis import LockOrderSanitizer, enabled_from_env
from repro.core import (
    CBCTGeometry,
    EllipsoidPhantom,
    ProjectionStack,
    default_geometry_for_problem,
    fdk_weight_and_filter,
    forward_project_analytic,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
)

#: The session's lock-order sanitizer, installed only when
#: REPRO_LOCK_SANITIZER=1 (see repro.analysis.locksan).
_LOCK_SANITIZER: LockOrderSanitizer | None = None


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slower end-to-end tests")
    global _LOCK_SANITIZER
    if enabled_from_env() and _LOCK_SANITIZER is None:
        _LOCK_SANITIZER = LockOrderSanitizer()
        _LOCK_SANITIZER.install()


def pytest_sessionfinish(session, exitstatus):
    global _LOCK_SANITIZER
    if _LOCK_SANITIZER is None:
        return
    sanitizer, _LOCK_SANITIZER = _LOCK_SANITIZER, None
    sanitizer.uninstall()
    print(f"\n{sanitizer.report()}", file=sys.stderr)
    if sanitizer.inversions:
        # Any observed A->B / B->A pair is a latent deadlock: fail the
        # whole session even if every test passed.
        session.exitstatus = 3


@pytest.fixture(scope="session")
def small_geometry() -> CBCTGeometry:
    """A 32³ volume / 48² detector / 24 projection geometry."""
    return default_geometry_for_problem(nu=48, nv=48, np_=24, nx=32, ny=32, nz=32)


@pytest.fixture(scope="session")
def medium_geometry() -> CBCTGeometry:
    """A 48³ volume / 64² detector / 48 projection geometry."""
    return default_geometry_for_problem(nu=64, nv=64, np_=48, nx=48, ny=48, nz=48)


@pytest.fixture(scope="session")
def shepp_logan_phantom() -> EllipsoidPhantom:
    return EllipsoidPhantom(shepp_logan_ellipsoids())


@pytest.fixture(scope="session")
def small_projections(small_geometry, shepp_logan_phantom) -> ProjectionStack:
    """Analytic Shepp-Logan projections for the small geometry."""
    return forward_project_analytic(shepp_logan_phantom, small_geometry)


@pytest.fixture(scope="session")
def small_filtered(small_geometry, small_projections) -> ProjectionStack:
    """Filtered (FDK-normalized) projections for the small geometry."""
    return fdk_weight_and_filter(small_projections, small_geometry)


@pytest.fixture(scope="session")
def medium_projections(medium_geometry, shepp_logan_phantom) -> ProjectionStack:
    return forward_project_analytic(shepp_logan_phantom, medium_geometry)


@pytest.fixture(scope="session")
def small_reference_volume(small_geometry):
    """Rasterized Shepp-Logan phantom matching the small geometry."""
    return shepp_logan_3d(small_geometry.nx, small_geometry.ny, small_geometry.nz)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
