"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_unknown_option_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_reconstruct_defaults(self):
        args = build_parser().parse_args(["reconstruct"])
        assert args.algorithm == "proposed"
        assert not args.distributed

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "--gpus", "128"])
        assert args.gpus == 128


class TestReconstructCommand:
    def test_single_node_reconstruction(self, tmp_path, capsys):
        out = tmp_path / "volume.npy"
        report = tmp_path / "report.json"
        code = main([
            "reconstruct",
            "--problem", "32x32x12->16x16x16",
            "--output", str(out),
            "--report", str(report),
        ])
        assert code == 0
        volume = np.load(out)
        assert volume.shape == (16, 16, 16)
        data = json.loads(report.read_text())
        assert data["mode"] == "single-node"
        assert data["gups"] > 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["problem"] == "32x32x12->16x16x16"

    def test_distributed_reconstruction(self, tmp_path, capsys):
        code = main([
            "reconstruct",
            "--problem", "32x32x8->16x16x16",
            "--distributed", "--rows", "2", "--columns", "2",
        ])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["mode"] == "distributed"
        assert printed["rows"] == 2 and printed["columns"] == 2

    def test_standard_algorithm_selectable(self, capsys):
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--algorithm", "standard"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["algorithm"] == "standard"

    def test_backend_selectable_and_conformant(self, capsys):
        """--backend threads through and changes nothing observable."""
        volumes = {}
        for backend in ("reference", "vectorized", "blocked"):
            code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                         "--backend", backend])
            assert code == 0
            printed = json.loads(capsys.readouterr().out)
            assert printed["backend"] == backend
            volumes[backend] = (printed["volume_min"], printed["volume_max"])
        ref_min, ref_max = volumes["reference"]
        for backend in ("vectorized", "blocked"):
            assert volumes[backend][0] == pytest.approx(ref_min, abs=1e-5)
            assert volumes[backend][1] == pytest.approx(ref_max, abs=1e-5)

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["reconstruct", "--backend", "cuda"])

    def test_malformed_problem_spec_exits_2(self, capsys):
        assert main(["reconstruct", "--problem", "not-a-problem"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_distributed_geometry_exits_2(self, capsys):
        # Np = 6 is not divisible by R*C = 4, so IFDKConfig must refuse.
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--distributed", "--rows", "2", "--columns", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


@pytest.mark.parallel
class TestWorkersFlag:
    """The --workers error paths follow the ValueError -> exit-2 convention."""

    @pytest.mark.parametrize("command", [
        ["reconstruct", "--backend", "parallel"],
        ["submit", "--problem", "512x512x1024->256x256x256", "--gpus", "4"],
    ])
    @pytest.mark.parametrize("workers", ["0", "-1"])
    def test_non_positive_workers_exits_2(self, command, workers, capsys):
        assert main(command + ["--workers", workers]) == 2
        err = capsys.readouterr().err
        assert "--workers must be a positive integer" in err

    def test_serve_non_positive_workers_exits_2(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "2", "-o", str(trace_path)]) == 0
        assert main(["serve", "--trace", str(trace_path), "--workers", "0"]) == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_workers_require_parallel_backend(self, capsys):
        assert main(["reconstruct", "--workers", "2"]) == 2
        assert "parallel" in capsys.readouterr().err

    def test_reconstruct_with_workers_matches_blocked(self, capsys):
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--backend", "blocked"])
        assert code == 0
        blocked = json.loads(capsys.readouterr().out)
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--backend", "parallel", "--workers", "2"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["backend"] == "parallel" and printed["workers"] == 2
        # Bit-identical family: the extrema agree exactly, not approximately.
        assert printed["volume_min"] == blocked["volume_min"]
        assert printed["volume_max"] == blocked["volume_max"]

    def test_submit_with_workers_reports_real_execution(self, capsys):
        assert main(["submit", "--problem", "512x512x1024->256x256x256",
                     "--gpus", "4", "--workers", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "completed"
        assert record["workers"] >= 1
        assert record["executed_wall_s"] > 0


class TestPredictCommand:
    def test_default_4k_problem(self, capsys):
        assert main(["predict", "--gpus", "2048"]) == 0
        out = capsys.readouterr().out
        assert "R=32" in out and "t_runtime" in out

    def test_explicit_rows(self, capsys):
        assert main(["predict", "--gpus", "256", "--rows", "256"]) == 0
        assert "C=1" in capsys.readouterr().out

    def test_invalid_rows_returns_error_code(self, capsys):
        assert main(["predict", "--gpus", "100", "--rows", "64"]) == 2

    def test_malformed_problem_spec_exits_2(self, capsys):
        assert main(["predict", "--problem", "64x64", "--gpus", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_infeasible_geometry_exits_2(self, capsys):
        # A 64k^3 output cannot fit 4 V100s even with R = 4.
        code = main(["predict", "--problem", "2048x2048x4096->64kx64kx64k",
                     "--gpus", "4"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTable4Command:
    def test_prints_all_kernels(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        for name in ("RTK-32", "Bp-Tex", "Tex-Tran", "Bp-L1", "L1-Tran"):
            assert name in out
        assert "512x512x1024->128x128x128" in out


class TestScenariosCommand:
    def test_lists_at_least_four_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for preset in ("full_scan", "short_scan", "offset_detector",
                       "sparse_view", "noisy"):
            assert preset in out

    def test_reconstruct_with_scenario(self, capsys):
        code = main(["reconstruct", "--problem", "32x32x16->16x16x16",
                     "--scenario", "short_scan", "--backend", "vectorized"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["scenario"] == "short_scan"
        # The short scan keeps only the pi + 2*delta prefix of the sweep.
        assert printed["projections"] < 16
        assert printed["angular_range"] < 2 * np.pi

    def test_reconstruct_scenario_matches_direct_api(self, capsys):
        """--scenario output agrees with the library path (same min/max)."""
        from repro.core import (
            EllipsoidPhantom,
            default_geometry_for_problem,
            forward_project_analytic,
            shepp_logan_ellipsoids,
        )
        from repro.scenarios import reconstruct_scenario

        code = main(["reconstruct", "--problem", "32x32x16->16x16x16",
                     "--scenario", "sparse_view"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        geometry = default_geometry_for_problem(
            nu=32, nv=32, np_=16, nx=16, ny=16, nz=16
        )
        stack = forward_project_analytic(
            EllipsoidPhantom(shepp_logan_ellipsoids()), geometry
        )
        result = reconstruct_scenario("sparse_view", geometry, stack)
        assert printed["volume_min"] == pytest.approx(
            float(result.volume.data.min())
        )
        assert printed["volume_max"] == pytest.approx(
            float(result.volume.data.max())
        )

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["reconstruct", "--scenario", "helical"])

    def test_distributed_scenario_exits_2(self, capsys):
        code = main(["reconstruct", "--problem", "32x32x8->16x16x16",
                     "--scenario", "short_scan", "--distributed"])
        assert code == 2
        assert "single-node" in capsys.readouterr().err

    def test_submit_with_scenario(self, capsys):
        code = main(["submit", "--problem", "512x512x1024->256x256x256",
                     "--gpus", "4", "--scenario", "noisy"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"] == "noisy"
        assert record["state"] == "completed"

    def test_trace_scenario_mix(self, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--jobs", "12", "--seed", "1",
                     "--scenario-mix", "full_scan=0.5,short_scan=0.5",
                     "-o", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        scenarios = {job["scenario"] for job in payload["jobs"]}
        assert scenarios == {"full_scan", "short_scan"}

    def test_trace_bad_scenario_mix_exits_2(self, tmp_path, capsys):
        code = main(["trace", "--jobs", "4", "--scenario-mix", "helical=1",
                     "-o", str(tmp_path / "t.json")])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err
