"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_unknown_option_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_reconstruct_defaults(self):
        # Parser defaults are None sentinels (so --plan conflicts are
        # detectable); plan_from_args resolves them to the real defaults.
        from repro.cli import plan_from_args

        args = build_parser().parse_args(["reconstruct"])
        assert args.algorithm is None
        assert not args.distributed
        plan = plan_from_args(args)
        assert plan.algorithm == "proposed"
        assert plan.backend == "reference"
        assert plan.scenario == "full_scan"
        assert plan.target == "fdk"
        assert str(plan.problem) == "96x96x120->64x64x64"

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "--gpus", "128"])
        assert args.gpus == 128


class TestReconstructCommand:
    def test_single_node_reconstruction(self, tmp_path, capsys):
        out = tmp_path / "volume.npy"
        report = tmp_path / "report.json"
        code = main([
            "reconstruct",
            "--problem", "32x32x12->16x16x16",
            "--output", str(out),
            "--report", str(report),
        ])
        assert code == 0
        volume = np.load(out)
        assert volume.shape == (16, 16, 16)
        data = json.loads(report.read_text())
        assert data["mode"] == "single-node"
        assert data["gups"] > 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["problem"] == "32x32x12->16x16x16"

    def test_distributed_reconstruction(self, tmp_path, capsys):
        code = main([
            "reconstruct",
            "--problem", "32x32x8->16x16x16",
            "--distributed", "--rows", "2", "--columns", "2",
        ])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["mode"] == "distributed"
        assert printed["rows"] == 2 and printed["columns"] == 2

    def test_standard_algorithm_selectable(self, capsys):
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--algorithm", "standard"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["algorithm"] == "standard"

    def test_backend_selectable_and_conformant(self, capsys):
        """--backend threads through and changes nothing observable."""
        volumes = {}
        for backend in ("reference", "vectorized", "blocked"):
            code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                         "--backend", backend])
            assert code == 0
            printed = json.loads(capsys.readouterr().out)
            assert printed["backend"] == backend
            volumes[backend] = (printed["volume_min"], printed["volume_max"])
        ref_min, ref_max = volumes["reference"]
        for backend in ("vectorized", "blocked"):
            assert volumes[backend][0] == pytest.approx(ref_min, abs=1e-5)
            assert volumes[backend][1] == pytest.approx(ref_max, abs=1e-5)

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["reconstruct", "--backend", "cuda"])

    def test_malformed_problem_spec_exits_2(self, capsys):
        assert main(["reconstruct", "--problem", "not-a-problem"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_distributed_geometry_exits_2(self, capsys):
        # Np = 6 is not divisible by R*C = 4, so IFDKConfig must refuse.
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--distributed", "--rows", "2", "--columns", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


@pytest.mark.parallel
class TestWorkersFlag:
    """The --workers error paths follow the ValueError -> exit-2 convention."""

    @pytest.mark.parametrize("command", [
        ["reconstruct", "--backend", "parallel"],
        ["submit", "--problem", "512x512x1024->256x256x256", "--gpus", "4"],
    ])
    @pytest.mark.parametrize("workers", ["0", "-1"])
    def test_non_positive_workers_exits_2(self, command, workers, capsys):
        assert main(command + ["--workers", workers]) == 2
        err = capsys.readouterr().err
        assert "--workers must be a positive integer" in err

    def test_serve_non_positive_workers_exits_2(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "2", "-o", str(trace_path)]) == 0
        assert main(["serve", "--trace", str(trace_path), "--workers", "0"]) == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_workers_require_parallel_backend(self, capsys):
        assert main(["reconstruct", "--workers", "2"]) == 2
        assert "parallel" in capsys.readouterr().err

    def test_reconstruct_with_workers_matches_blocked(self, capsys):
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--backend", "blocked"])
        assert code == 0
        blocked = json.loads(capsys.readouterr().out)
        code = main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--backend", "parallel", "--workers", "2"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["backend"] == "parallel" and printed["workers"] == 2
        # Bit-identical family: the extrema agree exactly, not approximately.
        assert printed["volume_min"] == blocked["volume_min"]
        assert printed["volume_max"] == blocked["volume_max"]

    def test_submit_with_workers_reports_real_execution(self, capsys):
        assert main(["submit", "--problem", "512x512x1024->256x256x256",
                     "--gpus", "4", "--workers", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "completed"
        assert record["workers"] >= 1
        assert record["executed_wall_s"] > 0


class TestPredictCommand:
    def test_default_4k_problem(self, capsys):
        assert main(["predict", "--gpus", "2048"]) == 0
        out = capsys.readouterr().out
        assert "R=32" in out and "t_runtime" in out

    def test_explicit_rows(self, capsys):
        assert main(["predict", "--gpus", "256", "--rows", "256"]) == 0
        assert "C=1" in capsys.readouterr().out

    def test_invalid_rows_returns_error_code(self, capsys):
        assert main(["predict", "--gpus", "100", "--rows", "64"]) == 2

    def test_malformed_problem_spec_exits_2(self, capsys):
        assert main(["predict", "--problem", "64x64", "--gpus", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_infeasible_geometry_exits_2(self, capsys):
        # A 64k^3 output cannot fit 4 V100s even with R = 4.
        code = main(["predict", "--problem", "2048x2048x4096->64kx64kx64k",
                     "--gpus", "4"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTable4Command:
    def test_prints_all_kernels(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        for name in ("RTK-32", "Bp-Tex", "Tex-Tran", "Bp-L1", "L1-Tran"):
            assert name in out
        assert "512x512x1024->128x128x128" in out


class TestScenariosCommand:
    def test_lists_at_least_four_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for preset in ("full_scan", "short_scan", "offset_detector",
                       "sparse_view", "noisy"):
            assert preset in out

    def test_reconstruct_with_scenario(self, capsys):
        code = main(["reconstruct", "--problem", "32x32x16->16x16x16",
                     "--scenario", "short_scan", "--backend", "vectorized"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["scenario"] == "short_scan"
        # The short scan keeps only the pi + 2*delta prefix of the sweep.
        assert printed["projections"] < 16
        assert printed["angular_range"] < 2 * np.pi

    def test_reconstruct_scenario_matches_direct_api(self, capsys):
        """--scenario output agrees with the library path (same min/max)."""
        from repro.core import (
            EllipsoidPhantom,
            default_geometry_for_problem,
            forward_project_analytic,
            shepp_logan_ellipsoids,
        )
        from repro.scenarios import reconstruct_scenario

        code = main(["reconstruct", "--problem", "32x32x16->16x16x16",
                     "--scenario", "sparse_view"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        geometry = default_geometry_for_problem(
            nu=32, nv=32, np_=16, nx=16, ny=16, nz=16
        )
        stack = forward_project_analytic(
            EllipsoidPhantom(shepp_logan_ellipsoids()), geometry
        )
        result = reconstruct_scenario("sparse_view", geometry, stack)
        assert printed["volume_min"] == pytest.approx(
            float(result.volume.data.min())
        )
        assert printed["volume_max"] == pytest.approx(
            float(result.volume.data.max())
        )

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["reconstruct", "--scenario", "helical"])

    def test_distributed_scenario_exits_2(self, capsys):
        code = main(["reconstruct", "--problem", "32x32x8->16x16x16",
                     "--scenario", "short_scan", "--distributed"])
        assert code == 2
        assert "single-node" in capsys.readouterr().err

    def test_submit_with_scenario(self, capsys):
        code = main(["submit", "--problem", "512x512x1024->256x256x256",
                     "--gpus", "4", "--scenario", "noisy"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"] == "noisy"
        assert record["state"] == "completed"

    def test_trace_scenario_mix(self, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--jobs", "12", "--seed", "1",
                     "--scenario-mix", "full_scan=0.5,short_scan=0.5",
                     "-o", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        scenarios = {job["scenario"] for job in payload["jobs"]}
        assert scenarios == {"full_scan", "short_scan"}

    def test_trace_bad_scenario_mix_exits_2(self, tmp_path, capsys):
        code = main(["trace", "--jobs", "4", "--scenario-mix", "helical=1",
                     "-o", str(tmp_path / "t.json")])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestPlanCommand:
    """The ``repro plan`` subcommand: emit, validate, describe."""

    def test_emit_validate_describe_round_trip(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", "--problem", "48x48x24->32x32x32",
                     "--backend", "vectorized", "-o", str(path)]) == 0
        capsys.readouterr()
        assert main(["plan", "validate", str(path)]) == 0
        assert "is valid" in capsys.readouterr().out
        assert main(["plan", "describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out
        assert "48x48x24->32x32x32" in out

    def test_emit_to_stdout_is_loadable_and_keyed(self, capsys):
        from repro.api import ReconstructionPlan

        assert main(["plan", "emit"]) == 0
        captured = capsys.readouterr()
        plan = ReconstructionPlan.from_json(captured.out)
        assert plan.target == "fdk"
        assert plan.key() in captured.err

    def test_emit_service_target_carries_qos(self, capsys):
        from repro.api import ReconstructionPlan

        assert main(["plan", "emit", "--target", "service", "--gpus", "8",
                     "--slo", "45", "--priority", "0"]) == 0
        plan = ReconstructionPlan.from_json(capsys.readouterr().out)
        assert plan.target == "service"
        assert (plan.cluster_gpus, plan.slo_seconds, plan.priority) == (8, 45.0, 0)

    def test_emit_rejects_plan_file_argument(self, tmp_path, capsys):
        assert main(["plan", "emit", str(tmp_path / "x.json")]) == 2
        assert "emit builds a plan from flags" in capsys.readouterr().err

    def test_validate_requires_file_argument(self, capsys):
        assert main(["plan", "validate"]) == 2
        assert "requires a plan file" in capsys.readouterr().err

    def test_validate_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["plan", "validate", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_validate_malformed_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["plan", "validate", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_validate_unknown_field_exits_2(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", "-o", str(path)]) == 0
        payload = json.loads(path.read_text())
        payload["wokers"] = 4  # the typo the strict schema exists to catch
        path.write_text(json.dumps(payload))
        assert main(["plan", "validate", str(path)]) == 2
        assert "unknown plan field" in capsys.readouterr().err

    def test_validate_semantically_invalid_plan_exits_2(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", "-o", str(path)]) == 0
        payload = json.loads(path.read_text())
        payload["backend"] = "cuda"
        path.write_text(json.dumps(payload))
        assert main(["plan", "validate", str(path)]) == 2
        assert "unknown backend" in capsys.readouterr().err


class TestPlanFlag:
    """``--plan plan.json`` on reconstruct and submit."""

    def emit(self, tmp_path, *flags):
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", *flags, "-o", str(path)]) == 0
        return path

    def test_reconstruct_with_plan_matches_explicit_flags(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--problem", "24x24x6->12x12x12",
                         "--backend", "vectorized")
        assert main(["reconstruct", "--problem", "24x24x6->12x12x12",
                     "--backend", "vectorized"]) == 0
        by_flags = json.loads(capsys.readouterr().out)
        assert main(["reconstruct", "--plan", str(path)]) == 0
        by_plan = json.loads(capsys.readouterr().out)
        # One canonical description -> bit-identical execution.
        assert by_plan["volume_min"] == by_flags["volume_min"]
        assert by_plan["volume_max"] == by_flags["volume_max"]
        assert by_plan["plan_key"] == by_flags["plan_key"]
        assert by_plan["backend"] == "vectorized"

    def test_reconstruct_plan_conflicts_with_flags_exit_2(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--problem", "24x24x6->12x12x12")
        assert main(["reconstruct", "--plan", str(path),
                     "--backend", "vectorized"]) == 2
        err = capsys.readouterr().err
        assert "--plan conflicts" in err and "--backend" in err

    def test_reconstruct_plan_conflicts_with_distributed_exit_2(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--problem", "32x32x8->16x16x16")
        assert main(["reconstruct", "--plan", str(path), "--distributed"]) == 2
        assert "--distributed" in capsys.readouterr().err

    def test_reconstruct_missing_plan_file_exits_2(self, tmp_path, capsys):
        assert main(["reconstruct", "--plan", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_reconstruct_malformed_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"geometry": "not-an-object"}')
        assert main(["reconstruct", "--plan", str(bad)]) == 2
        assert "geometry" in capsys.readouterr().err

    def test_submit_with_service_plan(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--target", "service",
                         "--problem", "512x512x1024->256x256x256",
                         "--gpus", "4", "--slo", "1000")
        assert main(["submit", "--plan", str(path)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "completed"
        assert record["met_slo"] is True
        assert record["plan_key"]

    def test_submit_plan_conflicts_with_flags_exit_2(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--target", "service")
        assert main(["submit", "--plan", str(path), "--priority", "0"]) == 2
        assert "--priority" in capsys.readouterr().err

    def test_submit_rejects_non_service_plan(self, tmp_path, capsys):
        path = self.emit(tmp_path, "--problem", "512x512x1024->256x256x256")
        assert main(["submit", "--plan", str(path)]) == 2
        assert "targets 'fdk'" in capsys.readouterr().err


class TestTraceScenarioFlag:
    """The shared --scenario flag reaches trace (single-preset traces)."""

    def test_trace_single_scenario(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "6", "--scenario", "short_scan",
                     "-o", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert {job["scenario"] for job in payload["jobs"]} == {"short_scan"}

    def test_scenario_and_mix_are_mutually_exclusive(self, tmp_path, capsys):
        code = main(["trace", "--jobs", "4", "--scenario", "short_scan",
                     "--scenario-mix", "full_scan=1",
                     "-o", str(tmp_path / "t.json")])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestPlanFlagStrictness:
    """Explicit flag values always reach validation — never silently drop."""

    def test_rows_without_ifdk_target_exit_2(self, capsys):
        # Forgetting --target ifdk must not emit a single-node plan.
        assert main(["plan", "emit", "--rows", "4", "--columns", "4"]) == 2
        assert "only apply to the ifdk target" in capsys.readouterr().err

    def test_zero_gpus_exit_2(self, capsys):
        assert main(["plan", "emit", "--target", "service", "--gpus", "0"]) == 2
        assert "cluster_gpus" in capsys.readouterr().err

    def test_zero_rows_exit_2(self, capsys):
        assert main(["reconstruct", "--problem", "32x32x8->16x16x16",
                     "--distributed", "--rows", "0", "--columns", "2"]) == 2
        assert "rows must be a positive integer" in capsys.readouterr().err


class TestSubmitPlanKeyParity:
    """Flag-built and file-built submissions share one canonical identity."""

    def test_submit_by_flags_matches_emitted_plan_key(self, tmp_path, capsys):
        flags = ["--problem", "512x512x1024->256x256x256", "--gpus", "4",
                 "--slo", "1000"]
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", "--target", "service", *flags,
                     "-o", str(path)]) == 0
        capsys.readouterr()
        assert main(["submit", *flags]) == 0
        by_flags = json.loads(capsys.readouterr().out)
        assert main(["submit", "--plan", str(path)]) == 0
        by_plan = json.loads(capsys.readouterr().out)
        assert by_flags["plan_key"] == by_plan["plan_key"]
        assert by_flags["tenant"] == by_plan["tenant"]


@pytest.mark.obs
class TestObservabilityCLI:
    """``--trace-out`` on the run commands and the ``repro report`` viewer."""

    SMALL = "24x24x6->12x12x12"

    def reconstruct_trace(self, tmp_path, capsys, suffix=".json"):
        path = tmp_path / f"trace{suffix}"
        assert main(["reconstruct", "--problem", self.SMALL,
                     "--trace-out", str(path)]) == 0
        return path, capsys.readouterr()

    def test_reconstruct_trace_out_writes_trace_and_report(self, tmp_path, capsys):
        path, captured = self.reconstruct_trace(tmp_path, capsys)
        payload = json.loads(captured.out)
        report = payload["run_report"]
        assert report["traced"] is True
        assert report["span_count"] >= 3
        assert "spans written to" in captured.err
        assert "backprojection" in captured.err  # the summary block
        document = json.loads(path.read_text())
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"run", "filter", "backproject"} <= names

    def test_trace_out_bad_suffix_exits_2_before_running(self, tmp_path, capsys):
        assert main(["reconstruct", "--problem", self.SMALL,
                     "--trace-out", str(tmp_path / "trace.xml")]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # failed up front, no reconstruction ran
        assert "error:" in captured.err and ".xml" in captured.err

    def test_report_renders_summary(self, tmp_path, capsys):
        path, _ = self.reconstruct_trace(tmp_path, capsys)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "backproject" in out and "filter" in out

    def test_report_converts_between_formats(self, tmp_path, capsys):
        path, _ = self.reconstruct_trace(tmp_path, capsys)
        jsonl = tmp_path / "trace.jsonl"
        assert main(["report", str(path), "--format", "jsonl",
                     "-o", str(jsonl)]) == 0
        capsys.readouterr()
        # The converted file is itself a loadable report input.
        assert main(["report", str(jsonl)]) == 0
        assert "run" in capsys.readouterr().out

    def test_report_unknown_format_exits_2(self, tmp_path, capsys):
        path, _ = self.reconstruct_trace(tmp_path, capsys)
        assert main(["report", str(path), "--format", "protobuf"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "protobuf" in err
        assert len(err.strip().splitlines()) == 1  # one-line error

    def test_report_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not a trace")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_report_wrong_json_shape_exits_2(self, tmp_path, capsys):
        not_a_trace = tmp_path / "plan.json"
        assert main(["plan", "emit", "-o", str(not_a_trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(not_a_trace)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_submit_trace_out_records_service_spans(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        assert main(["submit", "--problem", "512x512x1024->256x256x256",
                     "--gpus", "4", "--slo", "1000",
                     "--trace-out", str(path)]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["state"] == "completed"
        assert "service.schedule" in path.read_text()  # summary format


class TestPlanValidateFlagStrictness:
    """plan validate/describe never silently ignore plan-building flags."""

    def test_validate_rejects_stray_flags(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "emit", "-o", str(path)]) == 0
        assert main(["plan", "validate", str(path),
                     "--backend", "vectorized"]) == 2
        err = capsys.readouterr().err
        assert "--backend" in err and "emit" in err
        assert main(["plan", "describe", str(path), "--workers", "4"]) == 2
        assert "--workers" in capsys.readouterr().err
