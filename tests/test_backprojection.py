"""Unit tests for the standard and proposed back-projection algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backprojection import (
    BackProjector,
    backproject_proposed,
    backproject_standard,
    operation_counts,
    projection_compute_reduction,
)
from repro.core.types import ReconstructionProblem


class TestAlgorithmEquivalence:
    def test_proposed_equals_standard(self, small_geometry, small_filtered):
        std = backproject_standard(small_filtered, small_geometry)
        new = backproject_proposed(small_filtered, small_geometry)
        np.testing.assert_allclose(std.data, new.data, atol=2e-4 * np.abs(std.data).max() + 1e-6)

    def test_symmetry_off_equals_symmetry_on(self, small_geometry, small_filtered):
        on = backproject_proposed(small_filtered, small_geometry, use_symmetry=True)
        off = backproject_proposed(small_filtered, small_geometry, use_symmetry=False)
        np.testing.assert_allclose(on.data, off.data, atol=1e-5)

    def test_slab_union_equals_full_volume(self, small_geometry, small_filtered):
        full = backproject_proposed(small_filtered, small_geometry)
        nz = small_geometry.nz
        parts = [
            backproject_proposed(small_filtered, small_geometry, z_range=(z, z + nz // 4)).data
            for z in range(0, nz, nz // 4)
        ]
        np.testing.assert_allclose(np.concatenate(parts, axis=0), full.data, atol=1e-6)

    def test_standard_slab_union_equals_full_volume(self, small_geometry, small_filtered):
        full = backproject_standard(small_filtered, small_geometry)
        nz = small_geometry.nz
        parts = [
            backproject_standard(small_filtered, small_geometry, z_range=(z, z + nz // 2)).data
            for z in range(0, nz, nz // 2)
        ]
        np.testing.assert_allclose(np.concatenate(parts, axis=0), full.data, atol=1e-6)

    def test_asymmetric_slab_still_matches_standard(self, small_geometry, small_filtered):
        # A slab that does not contain its mirror slices exercises the
        # fallback (direct) path of the proposed algorithm.
        z_range = (3, 11)
        std = backproject_standard(small_filtered, small_geometry, z_range=z_range)
        new = backproject_proposed(small_filtered, small_geometry, z_range=z_range)
        np.testing.assert_allclose(std.data, new.data, atol=1e-4)

    def test_odd_nz_center_slice_handled(self, shepp_logan_phantom):
        from repro.core import default_geometry_for_problem, forward_project_analytic, fdk_weight_and_filter

        geo = default_geometry_for_problem(nu=32, nv=32, np_=8, nx=16, ny=16, nz=15)
        stack = forward_project_analytic(shepp_logan_phantom, geo)
        filt = fdk_weight_and_filter(stack, geo)
        std = backproject_standard(filt, geo)
        new = backproject_proposed(filt, geo)
        np.testing.assert_allclose(std.data, new.data, atol=1e-4)

    def test_volume_is_finite_and_nontrivial(self, small_geometry, small_filtered):
        vol = backproject_proposed(small_filtered, small_geometry)
        assert np.all(np.isfinite(vol.data))
        assert np.abs(vol.data).max() > 0.05


class TestBackProjector:
    def test_incremental_accumulation_matches_batch(self, small_geometry, small_filtered):
        reference = backproject_proposed(small_filtered, small_geometry)
        projector = BackProjector(small_geometry, algorithm="proposed")
        # Feed projections in two chunks, as the pipeline's BP thread does.
        half = small_filtered.np_ // 2
        projector.accumulate(small_filtered.data[:half], small_filtered.angles[:half])
        projector.accumulate(small_filtered.data[half:], small_filtered.angles[half:])
        np.testing.assert_allclose(projector.volume().data, reference.data, atol=1e-5)

    def test_standard_algorithm_projector(self, small_geometry, small_filtered):
        reference = backproject_standard(small_filtered, small_geometry)
        projector = BackProjector(small_geometry, algorithm="standard")
        projector.accumulate(small_filtered.data, small_filtered.angles)
        np.testing.assert_allclose(projector.volume().data, reference.data, atol=1e-6)

    def test_z_range_projector(self, small_geometry, small_filtered):
        z_range = (8, 16)
        reference = backproject_proposed(small_filtered, small_geometry, z_range=z_range)
        projector = BackProjector(small_geometry, z_range=z_range)
        projector.accumulate(small_filtered.data, small_filtered.angles)
        np.testing.assert_allclose(projector.volume().data, reference.data, atol=1e-5)

    def test_counters(self, small_geometry, small_filtered):
        projector = BackProjector(small_geometry)
        projector.accumulate(small_filtered.data[:5], small_filtered.angles[:5])
        assert projector.projections_processed == 5
        expected_updates = 5 * small_geometry.nx * small_geometry.ny * small_geometry.nz
        assert projector.updates_performed == expected_updates

    def test_reset(self, small_geometry, small_filtered):
        projector = BackProjector(small_geometry)
        projector.accumulate(small_filtered.data[0], small_filtered.angles[0])
        projector.reset()
        assert projector.projections_processed == 0
        assert np.all(projector.volume().data == 0)

    def test_single_projection_scalar_angle(self, small_geometry, small_filtered):
        projector = BackProjector(small_geometry)
        projector.accumulate(small_filtered.data[0], float(small_filtered.angles[0]))
        assert projector.projections_processed == 1

    def test_rejects_unknown_algorithm(self, small_geometry):
        with pytest.raises(ValueError):
            BackProjector(small_geometry, algorithm="magic")

    def test_rejects_bad_z_range(self, small_geometry):
        with pytest.raises(ValueError):
            BackProjector(small_geometry, z_range=(10, 5))

    def test_rejects_mismatched_angles(self, small_geometry, small_filtered):
        projector = BackProjector(small_geometry)
        with pytest.raises(ValueError):
            projector.accumulate(small_filtered.data[:3], small_filtered.angles[:2])


class TestOperationCounts:
    def test_standard_counts(self):
        p = ReconstructionProblem(nu=16, nv=16, np_=10, nx=8, ny=8, nz=8)
        counts = operation_counts(p, "standard")
        assert counts.inner_products == 3 * 8 * 8 * 8 * 10

    def test_proposed_counts_much_smaller(self):
        p = ReconstructionProblem(nu=16, nv=16, np_=10, nx=8, ny=8, nz=8)
        std = operation_counts(p, "standard")
        new = operation_counts(p, "proposed")
        assert new.inner_products < std.inner_products
        assert new.weighted_total < std.weighted_total

    def test_reduction_approaches_one_sixth(self):
        # Section 3.2.2: the projection computation cost tends to 1/6.
        p = ReconstructionProblem(nu=64, nv=64, np_=100, nx=512, ny=512, nz=512)
        ratio = projection_compute_reduction(p)
        assert ratio == pytest.approx(1.0 / 6.0, rel=0.02)

    def test_reduction_worse_for_shallow_volumes(self):
        shallow = ReconstructionProblem(nu=64, nv=64, np_=10, nx=128, ny=128, nz=2)
        deep = ReconstructionProblem(nu=64, nv=64, np_=10, nx=128, ny=128, nz=512)
        assert projection_compute_reduction(shallow) > projection_compute_reduction(deep)

    def test_unknown_algorithm_rejected(self):
        p = ReconstructionProblem(nu=4, nv=4, np_=2, nx=4, ny=4, nz=4)
        with pytest.raises(ValueError):
            operation_counts(p, "other")
