"""Tests for the forward projectors and the single-node FDK reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    forward_project_volume,
    reconstruct_fdk,
    shepp_logan_3d,
    uniform_sphere_phantom,
)
from repro.core.metrics import interior_mask, normalized_cross_correlation, rmse


class TestForwardProjectors:
    def test_analytic_projection_shape_and_positivity(self, small_geometry, small_projections):
        assert small_projections.data.shape == (
            small_geometry.np_, small_geometry.nv, small_geometry.nu,
        )
        assert np.all(small_projections.data >= -1e-5)
        assert small_projections.data.max() > 0

    def test_central_ray_integral_matches_sphere_diameter(self):
        geo = default_geometry_for_problem(nu=64, nv=64, np_=4, nx=32, ny=32, nz=32)
        sphere = uniform_sphere_phantom(radius=0.5, value=1.0)
        stack = forward_project_analytic(sphere, geo)
        # The central detector pixel sees a chord through the sphere centre:
        # diameter = 0.5 * 32 voxels * 1 mm = 16 mm.
        center = stack.data[0, (geo.nv - 1) // 2, (geo.nu - 1) // 2]
        assert center == pytest.approx(16.0, rel=0.05)

    def test_volume_projector_agrees_with_analytic(self):
        geo = default_geometry_for_problem(nu=48, nv=48, np_=6, nx=32, ny=32, nz=32)
        sphere = uniform_sphere_phantom(radius=0.6, value=1.0)
        analytic = forward_project_analytic(sphere, geo)
        numeric = forward_project_volume(sphere.rasterize(32, 32, 32, supersample=2), geo)
        mask = analytic.data > 2.0  # compare well inside the shadow of the sphere
        rel_err = np.abs(numeric.data[mask] - analytic.data[mask]) / analytic.data[mask]
        assert np.median(rel_err) < 0.08

    def test_volume_projector_rejects_shape_mismatch(self, small_geometry):
        from repro.core.types import Volume

        with pytest.raises(ValueError):
            forward_project_volume(Volume.zeros(8, 8, 8), small_geometry)

    def test_volume_projector_rejects_bad_step(self, small_geometry, small_reference_volume):
        with pytest.raises(ValueError):
            forward_project_volume(small_reference_volume, small_geometry, step_mm=0.0)

    def test_empty_volume_projects_to_zero(self, small_geometry):
        from repro.core.types import Volume

        vol = Volume.zeros(small_geometry.nx, small_geometry.ny, small_geometry.nz)
        stack = forward_project_volume(vol, small_geometry, angles=[0.0])
        assert np.all(stack.data == 0)

    def test_projection_angles_respected(self, shepp_logan_phantom, small_geometry):
        stack = forward_project_analytic(shepp_logan_phantom, small_geometry, angles=[0.0, 1.0])
        assert stack.np_ == 2
        assert stack.angles.tolist() == [0.0, 1.0]


class TestFDKReconstruction:
    def test_reconstruction_quantitatively_close_to_phantom(
        self, small_geometry, small_projections, small_reference_volume
    ):
        volume = reconstruct_fdk(small_projections, small_geometry)
        mask = interior_mask(small_reference_volume.shape, 0.7)
        err = rmse(volume.data, small_reference_volume.data, mask)
        ncc = normalized_cross_correlation(volume.data, small_reference_volume.data, mask)
        assert err < 0.12
        assert ncc > 0.6
        # Absolute scale is preserved (the FDK normalization is correct):
        center = volume.data[
            small_geometry.nz // 2, small_geometry.ny // 2, small_geometry.nx // 2
        ]
        assert center == pytest.approx(0.2, abs=0.08)

    def test_sphere_center_value_reconstructed(self):
        geo = default_geometry_for_problem(nu=64, nv=64, np_=60, nx=32, ny=32, nz=32)
        sphere = uniform_sphere_phantom(radius=0.6, value=1.0)
        stack = forward_project_analytic(sphere, geo)
        volume = reconstruct_fdk(stack, geo)
        assert volume.data[16, 16, 16] == pytest.approx(1.0, abs=0.15)

    def test_both_algorithms_give_same_reconstruction(self, small_geometry, small_projections):
        a = reconstruct_fdk(small_projections, small_geometry, algorithm="standard")
        b = reconstruct_fdk(small_projections, small_geometry, algorithm="proposed")
        np.testing.assert_allclose(a.data, b.data, atol=1e-4)

    def test_reconstructor_reports_timings_and_gups(self, small_geometry, small_projections):
        result = FDKReconstructor(geometry=small_geometry).reconstruct(small_projections)
        assert result.filter_seconds >= 0
        assert result.backprojection_seconds > 0
        assert result.gups > 0
        assert result.total_seconds >= result.backprojection_seconds

    def test_reconstructor_accepts_prefiltered_stack(self, small_geometry, small_filtered):
        recon = FDKReconstructor(geometry=small_geometry)
        result = recon.reconstruct(small_filtered)
        reference = recon.backproject(small_filtered)
        np.testing.assert_allclose(result.volume.data, reference.data, atol=1e-6)

    def test_reconstructor_validates_configuration(self, small_geometry):
        with pytest.raises(ValueError):
            FDKReconstructor(geometry=small_geometry, ramp_filter="nope")
        with pytest.raises(ValueError):
            FDKReconstructor(geometry=small_geometry, algorithm="nope")

    def test_reconstructor_rejects_mismatched_stack(self, small_geometry, medium_projections):
        with pytest.raises(ValueError):
            FDKReconstructor(geometry=small_geometry).reconstruct(medium_projections)

    @pytest.mark.parametrize("window", ["ram-lak", "hann", "shepp-logan"])
    def test_apodized_filters_reduce_noise_amplification(
        self, small_geometry, small_projections, window
    ):
        volume = reconstruct_fdk(small_projections, small_geometry, ramp_filter=window)
        assert np.all(np.isfinite(volume.data))

    def test_z_slab_reconstructor(self, small_geometry, small_projections):
        full = FDKReconstructor(geometry=small_geometry).reconstruct(small_projections)
        slab = FDKReconstructor(geometry=small_geometry, z_range=(8, 24)).reconstruct(
            small_projections
        )
        np.testing.assert_allclose(slab.volume.data, full.volume.data[8:24], atol=1e-5)
