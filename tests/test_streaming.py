"""The streaming-equivalence harness (``repro.streaming``).

The streaming pipeline's contract is stronger than "close enough": because
every filtering table is geometry-only, the per-row FFT is batch-invariant
and one accumulator consumes chunks in acquisition order, chunked execution
must be **bit-identical** to the whole-stack path — per backend, per
scenario, per input dtype, at every chunk size.  This module pins that
contract and the machinery around it:

* the equivalence matrix (backend × scenario × dtype × chunk size), plus
  golden 32³ hash agreement with the pinned reference volume;
* Hypothesis property tests for chunk planning (exact partition of
  ``range(Np)``; the working-set estimate never exceeds the budget; an
  infeasible budget is a loud :class:`ValueError`);
* online-source fault injection: out-of-order completion inside the
  reorder window reconstructs bit-identically, everything past the
  window — stalls, early close, duplicates, overflow — fails loudly
  (never a silent partial volume), with circular-buffer wraparound
  covered at ``capacity == chunk_size``;
* the memory-bound slow-tier test: a 256³ volume from a PFS-backed source
  under a budget the whole-stack path provably exceeds, with subprocess
  peak RSS within 1.5× of the budget;
* the CLI error paths (``--stream`` with bad knobs → exit 2) and the
  plan/Session/service/observability seams.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ReconstructionPlan, Session, plan_for_problem, run_plan
from repro.backends import available_backends, get_backend
from repro.cli import main
from repro.core import default_geometry_for_problem
from repro.core.types import ProjectionStack
from repro.obs import MetricsRegistry, Tracer, use_tracer
from repro.pfs import SimulatedPFS
from repro.pfs.projection_io import write_projection_dataset
from repro.pipeline import CircularBuffer
from repro.scenarios import get_scenario
from repro.service import ReconstructionService
from repro.service.dispatch import BatchedDispatcher
from repro.streaming import (
    DEFAULT_CHUNK_SIZE,
    OnlineChunkSource,
    PFSChunkSource,
    StackChunkSource,
    StreamingError,
    StreamingReconstructor,
    chunk_working_set_bytes,
    parse_byte_size,
    per_projection_working_set_bytes,
    plan_chunks,
    reconstruct_streaming,
    resolve_chunk_size,
    stream_stack,
    whole_stack_working_set_bytes,
)

pytestmark = pytest.mark.streaming

#: Conformance bound of every backend against the reference volume.
RMSE_TOL = 1e-5

#: The equivalence-matrix geometry: small, anisotropic, even+odd divisors.
BASE = default_geometry_for_problem(nu=32, nv=24, np_=24, nx=16, ny=16, nz=12)

SCENARIOS = ("full_scan", "short_scan", "sparse_view")
DTYPES = ("float32", "float64")
#: chunk_size=None runs one whole-stack-sized chunk (resolve caps at Np).
CHUNK_SIZES = (1, 7, None)


def scenario_case(scenario: str, dtype: str):
    """(geometry, stack, redundancy) of one scenario × dtype matrix cell."""
    preset = get_scenario(scenario)
    geometry = BASE if preset.is_ideal else preset.apply_geometry(BASE)
    rng = np.random.default_rng(20260808)
    data = rng.standard_normal(
        (geometry.np_, geometry.nv, geometry.nu)
    ).astype(dtype)
    stack = ProjectionStack(data=data, angles=geometry.angles, filtered=False)
    redundancy = None if preset.is_ideal else preset.redundancy_weights(geometry)
    return geometry, stack, redundancy


@pytest.fixture(scope="module")
def whole_stack_volumes():
    """Whole-stack reference results, computed once per matrix cell."""
    cache = {}

    def compute(backend: str, scenario: str, dtype: str) -> np.ndarray:
        key = (backend, scenario, dtype)
        if key not in cache:
            geometry, stack, redundancy = scenario_case(scenario, dtype)
            cache[key] = get_backend(backend).reconstruct(
                stack, geometry, algorithm="proposed", redundancy=redundancy
            ).data
        return cache[key]

    return compute


def rel_rmse(result: np.ndarray, reference: np.ndarray) -> float:
    scale = float(np.abs(reference).max()) or 1.0
    return float(
        np.sqrt(np.mean((result.astype(np.float64) - reference) ** 2))
    ) / scale


# --------------------------------------------------------------------------- #
# The equivalence matrix (the tentpole's proof obligation)
# --------------------------------------------------------------------------- #
class TestStreamingEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("backend", available_backends())
    def test_streaming_is_bit_identical_to_whole_stack(
        self, backend, scenario, dtype, chunk_size, whole_stack_volumes
    ):
        geometry, stack, _ = scenario_case(scenario, dtype)
        result = reconstruct_streaming(
            stack, geometry,
            backend=get_backend(backend),
            scenario=None if scenario == "full_scan" else scenario,
            chunk_size=chunk_size,
        )
        whole = whole_stack_volumes(backend, scenario, dtype)
        # Bit-identity holds for every backend (reference included): the
        # chunk decomposition changes no arithmetic and no order.
        np.testing.assert_array_equal(result.volume.data, whole)
        # And every backend's streaming output stays inside the cross-
        # backend conformance bound against the reference volume.
        reference = whole_stack_volumes("reference", scenario, dtype)
        assert rel_rmse(result.volume.data, reference) <= RMSE_TOL
        expected_chunk = resolve_chunk_size(
            geometry, geometry.np_, chunk_size=chunk_size
        )
        assert result.chunk_size == expected_chunk
        assert result.chunk_count == len(plan_chunks(geometry.np_, expected_chunk))
        assert result.num_projections == geometry.np_

    def test_pfs_source_matches_in_memory_source(self):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, stack)
        via_pfs = reconstruct_streaming(
            PFSChunkSource(pfs), geometry, backend="vectorized", chunk_size=7
        )
        in_memory = reconstruct_streaming(
            stack, geometry, backend="vectorized", chunk_size=7
        )
        np.testing.assert_array_equal(
            via_pfs.volume.data, in_memory.volume.data
        )

    def test_prefiltered_stack_skips_filtering(self, small_geometry, small_filtered):
        streamed = reconstruct_streaming(
            small_filtered, small_geometry, backend="vectorized", chunk_size=5
        )
        whole = get_backend("vectorized").backproject(
            small_filtered, small_geometry, algorithm="proposed"
        )
        np.testing.assert_array_equal(streamed.volume.data, whole.data)
        assert streamed.filter_seconds == 0.0 or streamed.filter_seconds < 1e-3

    def test_prefiltered_stack_with_redundancy_scenario_rejected(
        self, small_geometry, small_filtered
    ):
        scenario = get_scenario("short_scan")
        geometry = scenario.apply_geometry(small_geometry)
        filtered = ProjectionStack(
            data=small_filtered.data[: geometry.np_],
            angles=geometry.angles,
            filtered=True,
        )
        with pytest.raises(ValueError, match="pre-filtered"):
            reconstruct_streaming(
                filtered, geometry, scenario="short_scan", chunk_size=5
            )

    def test_source_projection_count_must_match_geometry(self, small_geometry):
        short = ProjectionStack(
            data=np.zeros(
                (4, small_geometry.nv, small_geometry.nu), dtype=np.float32
            ),
            angles=small_geometry.angles[:4],
        )
        with pytest.raises(ValueError, match="promises 4"):
            reconstruct_streaming(short, small_geometry)

    def test_golden_volume_agreement(self):
        """Streaming the golden acquisition reproduces the pinned 32³ hash."""
        import test_golden_fdk as golden_mod

        stem = golden_mod.FAMILIES["full"]
        golden = np.load(golden_mod.DATA_DIR / f"{stem}.npz")["volume"]
        meta = json.loads(
            (golden_mod.DATA_DIR / f"{stem}.json").read_text()
        )
        result = reconstruct_streaming(
            golden_mod.golden_stack(), golden_mod.golden_geometry(),
            backend="reference", chunk_size=5,
        )
        if golden_mod._environment_matches(meta):
            digest = hashlib.sha256(result.volume.data.tobytes()).hexdigest()
            assert digest == meta["sha256"]
        else:
            assert rel_rmse(result.volume.data, golden) <= golden_mod.DRIFT_RMSE_TOL


# --------------------------------------------------------------------------- #
# Chunk planning: Hypothesis properties
# --------------------------------------------------------------------------- #
PLAN_GEOMETRY = default_geometry_for_problem(
    nu=48, nv=48, np_=24, nx=32, ny=32, nz=32
)
PER_PROJECTION = per_projection_working_set_bytes(PLAN_GEOMETRY)


class TestChunkPlanning:
    @settings(max_examples=200, deadline=None)
    @given(
        num_projections=st.integers(min_value=1, max_value=500),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    def test_chunks_partition_the_acquisition_exactly(
        self, num_projections, chunk_size
    ):
        bounds = plan_chunks(num_projections, chunk_size)
        # Full coverage, no overlap, order preserved: concatenating the
        # windows reproduces range(Np) exactly.
        flattened = [
            i for start, stop in bounds for i in range(start, stop)
        ]
        assert flattened == list(range(num_projections))
        assert all(stop - start <= chunk_size for start, stop in bounds)
        assert all(stop > start for start, stop in bounds)

    @settings(max_examples=200, deadline=None)
    @given(
        num_projections=st.integers(min_value=1, max_value=500),
        budget_projections=st.floats(min_value=1.0, max_value=64.0),
    )
    def test_resolved_working_set_never_exceeds_budget(
        self, num_projections, budget_projections
    ):
        budget = int(budget_projections * PER_PROJECTION)
        chunk = resolve_chunk_size(
            PLAN_GEOMETRY, num_projections, memory_budget_bytes=budget
        )
        assert 1 <= chunk <= num_projections
        assert chunk_working_set_bytes(PLAN_GEOMETRY, chunk) <= budget

    @settings(max_examples=100, deadline=None)
    @given(budget=st.integers(min_value=1))
    def test_too_small_budget_raises_not_thrashes(self, budget):
        budget = budget % PER_PROJECTION  # always below one projection
        if budget == 0:
            budget = 1
        with pytest.raises(ValueError, match="raise the budget to at least"):
            resolve_chunk_size(
                PLAN_GEOMETRY, 24, memory_budget_bytes=budget
            )

    @settings(max_examples=100, deadline=None)
    @given(
        chunk_size=st.integers(min_value=2, max_value=64),
        headroom=st.floats(min_value=1.0, max_value=1.999),
    )
    def test_explicit_chunk_over_budget_is_rejected_not_shrunk(
        self, chunk_size, headroom
    ):
        budget = int(headroom * PER_PROJECTION)  # fits 1, never chunk_size
        with pytest.raises(ValueError, match="largest chunk that fits"):
            resolve_chunk_size(
                PLAN_GEOMETRY, 500,
                chunk_size=chunk_size, memory_budget_bytes=budget,
            )

    def test_defaults_and_caps(self):
        assert resolve_chunk_size(PLAN_GEOMETRY, 100) == DEFAULT_CHUNK_SIZE
        assert resolve_chunk_size(PLAN_GEOMETRY, 5) == 5
        assert resolve_chunk_size(PLAN_GEOMETRY, 100, chunk_size=7) == 7
        budget = 3 * PER_PROJECTION
        assert resolve_chunk_size(
            PLAN_GEOMETRY, 100, memory_budget_bytes=budget
        ) == 3
        assert resolve_chunk_size(
            PLAN_GEOMETRY, 2, memory_budget_bytes=budget
        ) == 2

    def test_whole_stack_estimate_scales_with_projections(self):
        assert whole_stack_working_set_bytes(PLAN_GEOMETRY, 24) == (
            24 * PER_PROJECTION
        )
        assert whole_stack_working_set_bytes(PLAN_GEOMETRY) == (
            PLAN_GEOMETRY.np_ * PER_PROJECTION
        )

    @pytest.mark.parametrize("text, expected", [
        ("268435456", 268435456),
        ("64MiB", 64 << 20),
        ("64mb", 64 << 20),
        ("1.5G", 3 << 29),
        ("2k", 2048),
        ("512B", 512),
    ])
    def test_parse_byte_size(self, text, expected):
        assert parse_byte_size(text) == expected

    @pytest.mark.parametrize("text", ["0", "0.0MiB", "12QB", "lots", ""])
    def test_parse_byte_size_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_byte_size(text)


# --------------------------------------------------------------------------- #
# Online source: overlap with acquisition, loud fault semantics
# --------------------------------------------------------------------------- #
def online_reconstruct(stack, geometry, buffer, *, order=None, chunk_size=7,
                       timeout=10.0, reorder_window=None):
    """Reconstruct from a producer thread feeding the buffer."""
    producer = threading.Thread(
        target=stream_stack, args=(stack, buffer), kwargs={"order": order}
    )
    producer.start()
    try:
        source = OnlineChunkSource(
            buffer, geometry.np_, timeout=timeout,
            reorder_window=reorder_window,
        )
        return reconstruct_streaming(
            source, geometry, backend="vectorized", chunk_size=chunk_size
        )
    finally:
        buffer.close()
        producer.join(timeout=10.0)
        assert not producer.is_alive()


class TestOnlineSource:
    def test_wraparound_at_capacity_equals_chunk_size(self, whole_stack_volumes):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        buffer = CircularBuffer(capacity=7)
        result = online_reconstruct(stack, geometry, buffer, chunk_size=7)
        np.testing.assert_array_equal(
            result.volume.data,
            whole_stack_volumes("vectorized", "full_scan", "float32"),
        )
        # The producer really pushed the whole acquisition through a
        # buffer of one chunk: it wrapped (Np/capacity times) and never
        # held more than its capacity.
        assert buffer.total_put == geometry.np_
        assert buffer.high_watermark <= 7

    def test_out_of_order_within_window_reconstructs_exactly(
        self, whole_stack_volumes
    ):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        order = list(range(geometry.np_))
        for i in range(0, geometry.np_ - 1, 2):  # swap adjacent pairs
            order[i], order[i + 1] = order[i + 1], order[i]
        result = online_reconstruct(
            stack, geometry, CircularBuffer(capacity=7), order=order
        )
        np.testing.assert_array_equal(
            result.volume.data,
            whole_stack_volumes("vectorized", "full_scan", "float32"),
        )

    def test_reordering_beyond_window_fails_loudly(self):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        with pytest.raises(StreamingError, match="reorder window"):
            online_reconstruct(
                stack, geometry, CircularBuffer(capacity=8),
                order=list(reversed(range(geometry.np_))),
                reorder_window=2,
            )

    def test_early_close_is_an_error_not_a_partial_volume(self):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        partial = ProjectionStack(
            data=stack.data[:10], angles=stack.angles[:10]
        )
        with pytest.raises(StreamingError, match="refusing"):
            online_reconstruct(partial, geometry, CircularBuffer(capacity=7))

    def test_stalled_producer_times_out(self):
        geometry, _, _ = scenario_case("full_scan", "float32")
        source = OnlineChunkSource(
            CircularBuffer(capacity=4), geometry.np_, timeout=0.05
        )
        with pytest.raises(TimeoutError):
            reconstruct_streaming(source, geometry, chunk_size=4)

    def test_duplicate_projection_index_fails_loudly(self):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        order = [0, 1, 2, 0] + list(range(3, geometry.np_))
        with pytest.raises(StreamingError, match="arrived twice"):
            online_reconstruct(
                stack, geometry, CircularBuffer(capacity=7), order=order
            )

    def test_out_of_range_index_fails_loudly(self):
        geometry, stack, _ = scenario_case("full_scan", "float32")
        buffer = CircularBuffer(capacity=4)
        buffer.put((geometry.np_ + 3, 0.0, stack.data[0]))
        source = OnlineChunkSource(buffer, geometry.np_, timeout=1.0)
        with pytest.raises(StreamingError, match="outside the promised"):
            reconstruct_streaming(source, geometry, chunk_size=4)

    def test_malformed_stream_item_fails_loudly(self):
        geometry, _, _ = scenario_case("full_scan", "float32")
        buffer = CircularBuffer(capacity=4)
        buffer.put("not a triple")
        source = OnlineChunkSource(buffer, geometry.np_, timeout=1.0)
        with pytest.raises(StreamingError, match="malformed"):
            reconstruct_streaming(source, geometry, chunk_size=4)


# --------------------------------------------------------------------------- #
# Memory-bound out-of-core reconstruction (slow tier)
# --------------------------------------------------------------------------- #
#: A child process reconstructs 256³ from an on-disk PFS dataset under the
#: budget, reporting its own process-lifetime peak RSS.  Subprocess
#: isolation is what makes the RSS measurement meaningful: ru_maxrss is a
#: lifetime high-water mark, so the parent pytest process (which holds
#: whole test fixtures) could never certify a bound.
_MEMORY_BOUND_CHILD = """
import json, sys
import numpy as np
from repro.core import default_geometry_for_problem
from repro.pfs import SimulatedPFS
from repro.pfs.projection_io import projection_object_name
from repro.streaming import PFSChunkSource, reconstruct_streaming

root, budget, chunk = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
geometry = default_geometry_for_problem(
    nu=320, nv=320, np_=64, nx=256, ny=256, nz=256
)
pfs = SimulatedPFS(root_dir=root)
pfs.write_array("projections/angles", geometry.angles)
rng = np.random.default_rng(11)
for index in range(geometry.np_):
    pfs.write_array(
        projection_object_name(index),
        rng.standard_normal((geometry.nv, geometry.nu)).astype(np.float32),
    )
result = reconstruct_streaming(
    PFSChunkSource(pfs), geometry, backend="blocked",
    chunk_size=chunk, memory_budget_bytes=budget,
)
print(json.dumps({
    "peak_rss_bytes": result.peak_rss_bytes,
    "chunks": result.chunk_count,
    "working_set_bytes": result.working_set_bytes,
    "checksum": float(np.abs(result.volume.data).sum()),
}))
"""


@pytest.mark.slow
def test_256_cube_reconstruction_under_budget_whole_stack_cannot_meet(tmp_path):
    geometry = default_geometry_for_problem(
        nu=320, nv=320, np_=64, nx=256, ny=256, nz=256
    )
    budget = 224 << 20  # 224 MiB
    chunk = 8
    # The premise: the whole-stack filtering working set provably exceeds
    # the budget, while the streamed chunk fits with room to spare.
    assert whole_stack_working_set_bytes(geometry) > budget
    assert chunk_working_set_bytes(geometry, chunk) <= budget
    completed = subprocess.run(
        [sys.executable, "-c", _MEMORY_BOUND_CHILD,
         str(tmp_path / "pfs"), str(budget), str(chunk)],
        capture_output=True, text=True, timeout=600,
        cwd=str(Path(__file__).parent.parent),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(completed.stdout)
    assert report["chunks"] == 8
    assert report["checksum"] > 0  # a real volume came back
    # The acceptance bound: the streaming process peaks within 1.5x of
    # the budget, where the whole-stack path could not even hold its
    # filtering intermediates.
    assert report["peak_rss_bytes"] <= 1.5 * budget, (
        f"peak RSS {report['peak_rss_bytes']} exceeded "
        f"1.5 x budget ({budget})"
    )


# --------------------------------------------------------------------------- #
# Plan / Session / service / CLI seams
# --------------------------------------------------------------------------- #
class TestStreamingSeams:
    def test_session_routes_streaming_plans(
        self, small_geometry, small_projections
    ):
        whole = run_plan(
            ReconstructionPlan(geometry=small_geometry, backend="vectorized"),
            small_projections,
        )
        streamed = run_plan(
            ReconstructionPlan(
                geometry=small_geometry, backend="vectorized",
                streaming=True, chunk_size=7,
            ),
            small_projections,
        )
        np.testing.assert_array_equal(
            streamed.volume.data, whole.volume.data
        )
        assert streamed.details["streaming"] is True
        assert streamed.details["chunk_size"] == 7
        assert streamed.details["chunks"] == 4  # 24 projections / 7
        assert streamed.details["peak_rss_bytes"] > 0

    def test_session_streaming_scenario_plan(
        self, small_geometry, small_projections
    ):
        whole = run_plan(
            ReconstructionPlan(
                geometry=small_geometry, scenario="short_scan",
                backend="blocked",
            ),
            small_projections,
        )
        streamed = run_plan(
            ReconstructionPlan(
                geometry=small_geometry, scenario="short_scan",
                backend="blocked", streaming=True, chunk_size=5,
            ),
            small_projections,
        )
        np.testing.assert_array_equal(
            streamed.volume.data, whole.volume.data
        )

    def test_streaming_session_emits_chunk_spans_and_metrics(
        self, small_geometry, small_projections
    ):
        plan = ReconstructionPlan(
            geometry=small_geometry, streaming=True, chunk_size=6
        )
        tracer = Tracer()
        with Session(plan, tracer=tracer) as session:
            result = session.run(small_projections)
        names = [span.name for span in tracer.spans()]
        chunks = result.details["chunks"]
        assert names.count("filter.chunk") == chunks
        assert names.count("backproject.chunk") == chunks
        obs = result.details["streaming_obs"]
        assert obs["streaming.chunks"] == chunks
        assert obs["streaming.peak_rss_bytes"] > 0
        assert result.report is not None
        # Chunk spans carry their global projection window.
        starts = sorted(
            span.attrs["start"] for span in tracer.spans()
            if span.name == "filter.chunk"
        )
        assert starts == [0, 6, 12, 18]

    def test_streaming_reconstructor_from_plan_matches_session(
        self, small_geometry, small_projections
    ):
        plan = ReconstructionPlan(
            geometry=small_geometry, backend="vectorized",
            streaming=True, memory_budget_bytes=64 << 20,
        )
        direct = StreamingReconstructor.from_plan(plan).reconstruct(
            StackChunkSource(small_projections)
        )
        via_session = run_plan(plan, small_projections)
        np.testing.assert_array_equal(
            direct.volume.data, via_session.volume.data
        )
        assert direct.memory_budget_bytes == 64 << 20
        assert direct.working_set_bytes <= 64 << 20

    def test_dispatcher_streaming_pilot_is_bit_identical(self):
        plain = BatchedDispatcher(1, backend="vectorized")
        streaming = BatchedDispatcher(
            1, backend="vectorized", streaming_chunk_size=3
        )
        whole = plain._backend.backproject(
            plain._stack, plain._geometry, algorithm="proposed"
        )
        chunked = streaming._streaming.reconstruct(streaming._source)
        np.testing.assert_array_equal(chunked.volume.data, whole.data)
        assert chunked.chunk_size == 3

    def test_service_executes_streaming_jobs(self):
        plan = plan_for_problem(
            "96x96x120->64x64x64", target="service",
            backend="vectorized", workers=2,
        )
        with ReconstructionService(
            8, backend="vectorized", workers=2, streaming_chunk_size=3
        ) as service:
            job = service.submit_plan(plan, dataset_id="stream-1")
            service.run_until_idle()
            service.dispatcher.drain()
            assert service.dispatcher.jobs_executed == 1
            assert service.dispatcher.streaming_chunk_size == 3
        assert job.as_record()["state"] == "completed"

    def test_workers_rejected_on_backend_instances(self):
        with pytest.raises(ValueError, match="by name"):
            StreamingReconstructor(
                BASE, backend=get_backend("vectorized"), workers=2
            )


class TestStreamingCLI:
    PROBLEM = "48x48x24->32x32x32"

    def run_cli(self, *argv, capsys):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_stream_flag_matches_whole_stack_output(self, tmp_path, capsys):
        whole_path = tmp_path / "whole.npy"
        stream_path = tmp_path / "stream.npy"
        code, _, _ = self.run_cli(
            "reconstruct", "--problem", self.PROBLEM,
            "--backend", "vectorized", "--output", str(whole_path),
            capsys=capsys,
        )
        assert code == 0
        code, out, _ = self.run_cli(
            "reconstruct", "--problem", self.PROBLEM,
            "--backend", "vectorized", "--stream", "--chunk-size", "7",
            "--output", str(stream_path),
            capsys=capsys,
        )
        assert code == 0
        report = json.loads(out)
        assert report["streaming"] is True
        assert report["chunks"] == 4
        np.testing.assert_array_equal(
            np.load(stream_path), np.load(whole_path)
        )

    @pytest.mark.parametrize("argv, match", [
        (("--stream", "--chunk-size", "0"), "positive"),
        (("--stream", "--chunk-size", "-3"), "positive"),
        (("--stream", "--memory-budget=0"), "positive"),
        (("--stream", "--memory-budget", "12XB"), "suffix"),
        (("--stream", "--memory-budget", "junk"), "cannot parse"),
        (("--stream", "--memory-budget", "1k"), "raise the budget"),
        (("--chunk-size", "4"), "streaming"),
        (("--memory-budget", "64MiB"), "streaming"),
    ])
    def test_bad_streaming_flags_exit_2(self, argv, match, capsys):
        code, _, err = self.run_cli(
            "reconstruct", "--problem", self.PROBLEM, *argv, capsys=capsys
        )
        assert code == 2
        assert match in err

    def test_plan_emit_and_reconstruct_round_trip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code, _, _ = self.run_cli(
            "plan", "emit", "--problem", self.PROBLEM,
            "--stream", "--memory-budget", "64MiB",
            "-o", str(plan_path),
            capsys=capsys,
        )
        assert code == 0
        plan = ReconstructionPlan.from_json(plan_path.read_text())
        assert plan.streaming is True
        assert plan.memory_budget_bytes == 64 << 20
        code, out, _ = self.run_cli(
            "reconstruct", "--plan", str(plan_path), capsys=capsys
        )
        assert code == 0
        assert json.loads(out)["streaming"] is True

    def test_plan_file_conflicts_with_stream_flags(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan_for_problem(self.PROBLEM).to_json())
        code, _, err = self.run_cli(
            "reconstruct", "--plan", str(plan_path), "--stream",
            capsys=capsys,
        )
        assert code == 2
        assert "--stream" in err

    def test_plan_validate_rejects_streaming_service_plan(
        self, tmp_path, capsys
    ):
        plan = plan_for_problem(
            self.PROBLEM, target="service"
        ).with_updates(streaming=True, chunk_size=4)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        code, _, err = self.run_cli(
            "plan", "validate", str(plan_path), capsys=capsys
        )
        assert code == 2
        assert "only wired for the fdk target" in err

    def test_plan_describe_shows_streaming_fields(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            plan_for_problem(self.PROBLEM, streaming=True, chunk_size=6).to_json()
        )
        code, out, _ = self.run_cli(
            "plan", "describe", str(plan_path), capsys=capsys
        )
        assert code == 0
        assert "streaming" in out
        assert "chunk_size" in out


class TestChunkSources:
    def test_stack_chunks_are_views_not_copies(self, small_projections):
        source = StackChunkSource(small_projections)
        chunk = next(iter(source.chunks([(3, 9)])))
        assert chunk.stack.np_ == 6
        assert np.shares_memory(chunk.stack.data, small_projections.data)

    def test_chunk_bounds_validation(self, small_projections):
        with pytest.raises(ValueError, match="invalid chunk bounds"):
            from repro.streaming import ProjectionChunk

            ProjectionChunk(start=5, stop=5, stack=small_projections)

    def test_pfs_source_missing_projection_fails_loudly(self, small_projections):
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, small_projections)
        pfs.delete("projections/000005")
        source = PFSChunkSource(pfs)
        with pytest.raises(StreamingError, match="missing projections"):
            list(source.chunks(plan_chunks(source.num_projections, 7)))

    def test_empty_pfs_dataset_rejected(self):
        with pytest.raises((StreamingError, KeyError)):
            PFSChunkSource(SimulatedPFS())

    def test_metrics_registry_counts_chunks(self, small_geometry, small_projections):
        metrics = MetricsRegistry()
        reconstructor = StreamingReconstructor(
            small_geometry, backend="vectorized", chunk_size=6,
            metrics=metrics,
        )
        reconstructor.reconstruct(StackChunkSource(small_projections))
        snapshot = metrics.snapshot()
        assert snapshot["streaming.chunks"] == 4
        assert snapshot["streaming.peak_rss_bytes"] > 0
