"""Tests for the reconstruction-as-a-service layer (``repro.service``)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core import fdk_weight_and_filter
from repro.core.types import problem_from_string
from repro.pfs import SimulatedPFS
from repro.service import (
    AdmissionPolicy,
    ArrivalTrace,
    BatchedDispatcher,
    CacheKey,
    ClusterScheduler,
    FilteredProjectionCache,
    GPUCluster,
    JobQueue,
    JobState,
    ReconstructionJob,
    ReconstructionService,
    ServiceMetrics,
    TraceEntry,
    fingerprint_stack,
    synthetic_trace,
)

SMALL = "512x512x1024->256x256x256"
MEDIUM = "1024x1024x1024->1024x1024x1024"
HEAVY = "2048x2048x4096->2048x2048x2048"


def make_job(problem=SMALL, **kwargs) -> ReconstructionJob:
    return ReconstructionJob(problem=problem_from_string(problem), **kwargs)


# --------------------------------------------------------------------------- #
# Jobs and the queue
# --------------------------------------------------------------------------- #
class TestJob:
    def test_lifecycle(self):
        job = make_job(slo_seconds=30.0, arrival_seconds=5.0)
        assert job.state is JobState.PENDING
        assert job.deadline_seconds == 35.0
        job.mark_queued()
        job.mark_running(6.0, gpus=4, rows=1, columns=4, cache_hit=False)
        job.mark_completed(16.0)
        assert job.latency_seconds == pytest.approx(11.0)
        assert job.runtime_seconds == pytest.approx(10.0)
        assert job.met_slo is True

    def test_best_effort_deadline_is_infinite(self):
        assert make_job().deadline_seconds == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_job(priority=-1)
        with pytest.raises(ValueError):
            make_job(slo_seconds=0.0)

    def test_record_is_json_serializable(self):
        job = make_job(slo_seconds=10.0)
        json.dumps(job.as_record())


class TestJobQueue:
    def test_orders_by_priority_then_deadline(self):
        queue = JobQueue()
        late = make_job(priority=1, slo_seconds=50.0)
        urgent = make_job(priority=0, slo_seconds=50.0)
        tight = make_job(priority=1, slo_seconds=5.0)
        for job in (late, urgent, tight):
            assert queue.offer(job)
        assert [j.job_id for j in queue.ordered()] == [
            urgent.job_id, tight.job_id, late.job_id
        ]
        assert queue.peek() is urgent

    def test_depth_cap_rejects(self):
        queue = JobQueue(AdmissionPolicy(max_depth=2))
        assert queue.offer(make_job())
        assert queue.offer(make_job())
        third = make_job()
        assert not queue.offer(third)
        assert third.state is JobState.REJECTED
        assert "queue full" in third.rejection_reason

    def test_backlog_cap_rejects(self):
        queue = JobQueue(AdmissionPolicy(max_backlog_seconds=10.0))
        first = make_job()
        first.estimated_seconds = 8.0
        second = make_job()
        second.estimated_seconds = 5.0
        assert queue.offer(first)
        assert not queue.offer(second)
        assert "backlog" in second.rejection_reason


# --------------------------------------------------------------------------- #
# Filtered-projection cache
# --------------------------------------------------------------------------- #
class TestFilteredProjectionCache:
    def key(self, dataset="ds-0", nu=64, nv=64, np_=32, ramp="ram-lak"):
        return CacheKey(dataset_id=dataset, ramp_filter=ramp, nu=nu, nv=nv, np_=np_)

    def test_hit_miss_accounting(self):
        cache = FilteredProjectionCache(capacity_bytes=1 << 30)
        key = self.key()
        assert not cache.lookup(key)
        cache.insert(key, nbytes=1000)
        assert cache.lookup(key)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_content_keyed(self):
        cache = FilteredProjectionCache()
        cache.insert(self.key(dataset="a"), nbytes=10)
        assert not cache.contains(self.key(dataset="b"))
        assert not cache.contains(self.key(dataset="a", ramp="hann"))
        assert cache.contains(self.key(dataset="a"))

    def test_lru_eviction_by_bytes(self):
        cache = FilteredProjectionCache(capacity_bytes=250)
        a, b, c = self.key("a"), self.key("b"), self.key("c")
        cache.insert(a, nbytes=100)
        cache.insert(b, nbytes=100)
        cache.lookup(a)  # a becomes most-recently-used
        cache.insert(c, nbytes=100)  # over capacity: evicts b (LRU)
        assert cache.contains(a) and cache.contains(c)
        assert not cache.contains(b)
        assert cache.stats.evictions == 1

    def test_contains_does_not_count(self):
        cache = FilteredProjectionCache()
        cache.contains(self.key())
        assert cache.stats.lookups == 0

    def test_refreshing_entry_still_enforces_capacity(self):
        cache = FilteredProjectionCache(capacity_bytes=250)
        a, b = self.key("a"), self.key("b")
        cache.insert(a, nbytes=100)
        cache.insert(b, nbytes=100)
        cache.insert(a, nbytes=200)  # refresh grows a over capacity
        assert cache.used_bytes <= 250
        assert cache.stats.evictions == 1 and not cache.contains(b)

    def test_get_filtered_counts_byte_only_entry_as_miss(self):
        cache = FilteredProjectionCache(pfs=SimulatedPFS())
        key = self.key()
        cache.insert(key, nbytes=100)  # scheduling path: no stored stack
        assert cache.get_filtered(key) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0

    def test_pfs_write_through_roundtrip(self, small_geometry, small_projections):
        pfs = SimulatedPFS()
        cache = FilteredProjectionCache(pfs=pfs)
        filtered = fdk_weight_and_filter(small_projections, small_geometry)
        key = CacheKey(
            dataset_id=fingerprint_stack(small_projections),
            ramp_filter="ram-lak",
            nu=small_projections.nu,
            nv=small_projections.nv,
            np_=small_projections.np_,
        )
        cache.insert(key, filtered=filtered)
        restored = cache.get_filtered(key)
        assert restored is not None and restored.filtered
        np.testing.assert_array_equal(restored.data, filtered.data)

    def test_fingerprint_tracks_content(self, small_projections):
        base = fingerprint_stack(small_projections)
        assert base == fingerprint_stack(small_projections.copy())
        modified = small_projections.copy()
        modified.data[0, 0, 0] += 1.0
        assert base != fingerprint_stack(modified)


# --------------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------------- #
class TestClusterScheduler:
    def test_slo_picks_cheapest_allocation_meeting_deadline(self):
        scheduler = ClusterScheduler(GPUCluster(16))
        loose = make_job(SMALL, slo_seconds=300.0)
        tight = make_job(SMALL, slo_seconds=4.0)
        loose_plan = scheduler.best_plan(loose, 16, now=0.0)
        tight_plan = scheduler.best_plan(tight, 16, now=0.0)
        assert loose_plan.gpus < tight_plan.gpus
        assert tight_plan.finish_at(0.0) <= tight.deadline_seconds

    def test_memory_constraint_forces_rows(self):
        scheduler = ClusterScheduler(GPUCluster(16))
        # The 2K output (32 GiB) needs R >= 4 on a 16 GB V100, so no plan
        # with fewer than 4 GPUs exists.
        plans = scheduler.candidate_plans(make_job(HEAVY), 16)
        assert plans and min(p.gpus for p in plans) >= 4
        assert all(p.rows >= 4 for p in plans)

    def test_cached_runtime_is_never_slower(self):
        scheduler = ClusterScheduler(GPUCluster(16))
        problem = problem_from_string(SMALL)
        plain = scheduler.runtime_seconds(problem, 1, 4)
        cached = scheduler.runtime_seconds(problem, 1, 4, cached=True)
        assert cached <= plain

    def test_fifo_takes_whole_cluster_in_order(self):
        cluster = GPUCluster(8)
        scheduler = ClusterScheduler(cluster, policy="fifo")
        queue = JobQueue()
        first = make_job(SMALL, arrival_seconds=0.0)
        second = make_job(SMALL, arrival_seconds=1.0)
        queue.offer(second)
        queue.offer(first)
        placements, rejected = scheduler.schedule(queue, now=1.0, running=[])
        assert not rejected
        assert [p.job is first for p in placements[:1]] == [True]
        assert placements[0].gpus == 8  # the whole cluster
        assert len(placements) == 1 and len(queue) == 1  # head-of-line blocking

    def test_slo_packs_concurrent_jobs(self):
        cluster = GPUCluster(16)
        scheduler = ClusterScheduler(cluster, policy="slo")
        queue = JobQueue()
        jobs = [make_job(SMALL, slo_seconds=120.0) for _ in range(4)]
        for job in jobs:
            queue.offer(job)
        placements, _ = scheduler.schedule(queue, now=0.0, running=[])
        assert len(placements) == 4  # all run concurrently
        assert sum(p.gpus for p in placements) <= 16

    def test_infeasible_job_rejected(self):
        scheduler = ClusterScheduler(GPUCluster(4))
        queue = JobQueue()
        monster = make_job("2048x2048x4096->8192x8192x8192")
        queue.offer(monster)
        placements, rejected = scheduler.schedule(queue, now=0.0, running=[])
        assert not placements and rejected == [monster]
        assert monster.state is JobState.REJECTED

    def test_slo_defers_for_larger_grid_when_waiting_meets_deadline(self):
        from repro.pipeline import choose_grid
        from repro.service import AllocationPlan, Placement

        cluster = GPUCluster(8)
        scheduler = ClusterScheduler(cluster, policy="slo")
        heavy = make_job(HEAVY)
        r4 = scheduler.runtime_seconds(heavy.problem, *choose_grid(heavy.problem, 4))
        r8 = scheduler.runtime_seconds(heavy.problem, *choose_grid(heavy.problem, 8))
        assert r8 < r4
        # 4 GPUs are busy until t=1; the remaining 4 would miss the SLO,
        # but all 8 starting at t=1 meet it.
        blocker = make_job(SMALL)
        blocker.mark_running(0.0, gpus=4, rows=1, columns=4, cache_hit=False)
        cluster.allocate(4)
        running = [Placement(
            job=blocker,
            plan=AllocationPlan(gpus=4, rows=1, columns=4,
                                runtime_seconds=1.0, cache_hit=False),
            start_seconds=0.0,
        )]
        heavy.slo_seconds = 1.0 + r8 + 0.5
        assert heavy.slo_seconds < r4
        queue = JobQueue()
        queue.offer(heavy)
        placements, rejected = scheduler.schedule(queue, now=0.0, running=running)
        assert placements == [] and rejected == []
        assert len(queue) == 1  # deferred behind the 8-GPU reservation

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            ClusterScheduler(GPUCluster(4), policy="random")

    def test_cluster_allocation_bounds(self):
        cluster = GPUCluster(4)
        cluster.allocate(3)
        with pytest.raises(RuntimeError):
            cluster.allocate(2)
        cluster.release(3)
        with pytest.raises(RuntimeError):
            cluster.release(1)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestServiceMetrics:
    def test_summary_percentiles_and_throughput(self):
        metrics = ServiceMetrics()
        for i, latency in enumerate((1.0, 2.0, 3.0, 4.0)):
            job = make_job(SMALL, arrival_seconds=float(i))
            job.mark_running(float(i), gpus=2, rows=1, columns=2, cache_hit=False)
            job.mark_completed(float(i) + latency)
            metrics.record_completion(job)
        summary = metrics.summary(cluster_gpus=4)
        assert summary["jobs_completed"] == 4
        assert summary["latency_p50_s"] == pytest.approx(2.5)
        assert summary["makespan_s"] == pytest.approx(7.0)
        assert summary["throughput_jobs_per_s"] == pytest.approx(4 / 7.0)
        assert 0.0 < summary["gpu_utilization"] <= 1.0

    def test_rejects_wrong_state(self):
        metrics = ServiceMetrics()
        with pytest.raises(ValueError):
            metrics.record_completion(make_job())


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #
class TestArrivalTrace:
    def test_synthetic_trace_is_deterministic(self):
        a = synthetic_trace(12, seed=7)
        b = synthetic_trace(12, seed=7)
        assert a.to_json() == b.to_json()
        assert synthetic_trace(12, seed=8).to_json() != a.to_json()

    def test_json_roundtrip(self, tmp_path):
        trace = synthetic_trace(10, cluster_gpus=8, seed=3)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.cluster_gpus == 8
        assert loaded.to_json() == trace.to_json()

    def test_entries_sorted_by_arrival(self):
        trace = ArrivalTrace(entries=[
            TraceEntry(job_id="b", tenant="t", arrival_seconds=5.0, problem=SMALL,
                       dataset_id="d"),
            TraceEntry(job_id="a", tenant="t", arrival_seconds=1.0, problem=SMALL,
                       dataset_id="d"),
        ])
        assert [e.job_id for e in trace.entries] == ["a", "b"]

    def test_malformed_json_raises_value_error(self):
        with pytest.raises(ValueError):
            ArrivalTrace.from_json("not json")
        with pytest.raises(ValueError):
            ArrivalTrace.from_json("[1, 2]")
        with pytest.raises(ValueError):
            ArrivalTrace.from_json('{"jobs": [{"tenant": "t"}]}')

    def test_null_fields_raise_value_error(self):
        with pytest.raises(ValueError):
            ArrivalTrace.from_json(
                '{"jobs": [{"id": "j", "arrival": null, "problem": "%s"}]}' % SMALL
            )
        with pytest.raises(ValueError):
            ArrivalTrace.from_json(
                '{"jobs": [{"id": "j", "arrival": 0.0, "priority": null, '
                '"problem": "%s"}]}' % SMALL
            )


# --------------------------------------------------------------------------- #
# End-to-end service replay
# --------------------------------------------------------------------------- #
class TestReconstructionService:
    def test_replay_completes_every_job(self):
        trace = synthetic_trace(20, cluster_gpus=8, seed=1)
        service = ReconstructionService(8)
        report = service.replay(trace)
        assert report.summary["jobs_completed"] == 20
        assert report.summary["jobs_rejected"] == 0
        assert service.cluster.in_use == 0
        assert len(service.queue) == 0

    def test_cache_hits_on_repeat_datasets(self):
        trace = synthetic_trace(20, cluster_gpus=8, seed=1, n_datasets=2)
        service = ReconstructionService(8)
        report = service.replay(trace)
        assert report.summary["cache_hit_rate"] > 0

    def test_concurrent_jobs_never_exceed_cluster(self):
        trace = synthetic_trace(20, cluster_gpus=8, seed=2)
        service = ReconstructionService(8)
        report = service.replay(trace)
        events = []
        for job in report.jobs:
            events.append((job["start_s"], job["gpus"]))
            events.append((job["finish_s"], -job["gpus"]))
        in_use, peak = 0, 0
        # Releases sort before same-instant allocations, as in the event loop.
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            in_use += delta
            peak = max(peak, in_use)
        assert peak <= 8

    def test_submit_rejects_infeasible_problem(self):
        service = ReconstructionService(2)
        job = make_job("2048x2048x4096->8192x8192x8192")
        assert not service.submit(job)
        assert job.state is JobState.REJECTED
        assert "infeasible" in job.rejection_reason
        assert service.metrics.rejected == [job]

    def test_single_job_latency_matches_model(self):
        service = ReconstructionService(4)
        job = make_job(SMALL, slo_seconds=1000.0)
        assert service.submit(job)
        service.run_until_idle()
        expected = service.scheduler.runtime_seconds(job.problem, job.rows, job.columns)
        assert job.latency_seconds == pytest.approx(expected)
        assert job.met_slo

    def test_fifo_policy_serializes(self):
        trace = synthetic_trace(8, cluster_gpus=8, seed=0, heavy_fraction=0.0)
        report = ReconstructionService(8, policy="fifo").replay(trace)
        done = [j for j in report.jobs if j["state"] == "completed"]
        # With the whole cluster per job, executions never overlap.
        spans = sorted((j["start_s"], j["finish_s"]) for j in done)
        for (_, f0), (s1, _) in zip(spans, spans[1:]):
            assert s1 >= f0 - 1e-9

    def test_report_is_json_serializable(self):
        report = ReconstructionService(8).replay(synthetic_trace(6, seed=0))
        json.dumps(report.as_dict())

    def test_second_replay_starts_from_fresh_metrics(self):
        service = ReconstructionService(8)
        service.replay(synthetic_trace(6, seed=0))
        report = service.replay(synthetic_trace(5, seed=1))
        assert report.summary["jobs_completed"] == 5
        assert len(report.jobs) == 5

    def test_stage_timings_surface_in_jobs_and_summary(self):
        """The filter/back-projection split must survive up to ServiceMetrics."""
        trace = synthetic_trace(10, cluster_gpus=8, seed=3, n_datasets=2)
        service = ReconstructionService(8)
        report = service.replay(trace)
        done = [j for j in report.jobs if j["state"] == "completed"]
        assert done
        for job in done:
            assert job["backprojection_s"] > 0
            # A cache hit skips filtering entirely; a miss pays T_flt.
            if job["cache_hit"]:
                assert job["filter_s"] == 0.0
            else:
                assert job["filter_s"] > 0
        summary = report.summary
        assert summary["backprojection_seconds_total"] == pytest.approx(
            sum(j["backprojection_s"] for j in done)
        )
        assert summary["filter_seconds_total"] == pytest.approx(
            sum(j["filter_s"] for j in done)
        )
        assert 0.0 < summary["filter_fraction"] < 1.0

    def test_stage_timings_match_model_breakdown(self):
        service = ReconstructionService(4)
        job = make_job(SMALL)
        assert service.submit(job)
        service.run_until_idle()
        breakdown = service.scheduler.model.breakdown(job.problem, job.rows, job.columns)
        assert job.filter_seconds == pytest.approx(breakdown.t_flt)
        assert job.backprojection_seconds == pytest.approx(breakdown.t_bp)

    def test_service_backend_is_stamped_on_jobs_and_report(self):
        service = ReconstructionService(8, backend="vectorized")
        job = make_job(SMALL)
        assert service.submit(job)
        service.run_until_idle()
        assert job.backend == "vectorized"
        report = service.report()
        assert report.backend == "vectorized"
        assert report.as_dict()["backend"] == "vectorized"
        with pytest.raises(ValueError, match="unknown backend"):
            ReconstructionService(8, backend="nope")


# --------------------------------------------------------------------------- #
# Real concurrent execution (the batched dispatcher)
# --------------------------------------------------------------------------- #
@pytest.mark.parallel
class TestBatchedDispatch:
    #: A pilot heavy enough (~tens of ms of tile-kernel work) that two
    #: concurrent executions must overlap in wall-clock by a wide margin.
    OVERLAP_PILOT = "48x48x64->32x32x32"

    def test_disjoint_placements_overlap_in_wall_clock(self):
        with ReconstructionService(
            16, backend="blocked", workers=2, pilot_problem=self.OVERLAP_PILOT
        ) as service:
            jobs = [make_job(SMALL, slo_seconds=500.0) for _ in range(2)]
            for job in jobs:
                assert service.submit(job)
            service.run_until_idle()
            first, second = jobs
            # Both were placed in the same scheduling cycle on disjoint GPU
            # sets and dispatched as one batch to a 2-worker pool: each must
            # start before the other finishes.
            assert first.executed_wall_seconds > 0
            assert second.executed_wall_seconds > 0
            assert first.executed_start_seconds < second.executed_finish_seconds
            assert second.executed_start_seconds < first.executed_finish_seconds
            assert service.dispatcher.batches_dispatched == 1
            assert service.dispatcher.jobs_executed == 2

    def test_cache_hits_are_safe_under_concurrent_submit(self):
        with ReconstructionService(16, backend="blocked", workers=2) as service:
            warm = make_job(dataset_id="shared")
            assert service.submit(warm)
            service.run_until_idle()
            jobs = [make_job(dataset_id="shared") for _ in range(8)]
            outcomes = [None] * len(jobs)

            def tenant(index):
                outcomes[index] = service.submit(jobs[index])

            threads = [
                threading.Thread(target=tenant, args=(i,), name=f"tenant-{i}")
                for i in range(len(jobs))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(outcomes)
            service.run_until_idle()
            assert all(j.state is JobState.COMPLETED for j in jobs)
            assert all(j.cache_hit for j in jobs)  # warmed dataset: all hit
            stats = service.cache.stats
            # Counted lookups stayed consistent under concurrency.
            assert stats.hits + stats.misses == stats.lookups
            assert stats.hits >= len(jobs)

    def test_worker_accounting_sums_correctly(self):
        trace = synthetic_trace(10, cluster_gpus=8, seed=4)
        with ReconstructionService(8, backend="blocked", workers=2) as service:
            report = service.replay(trace)
            done = [j for j in report.jobs if j["state"] == "completed"]
            assert done and all(j["executed_wall_s"] > 0 for j in done)
            assert all(j["workers"] >= 1 for j in done)
            summary = report.summary
            assert summary["jobs_executed"] == len(done)
            assert summary["worker_seconds_total"] == pytest.approx(
                sum(j["worker_seconds"] for j in done)
            )
            assert summary["executed_wall_seconds_total"] == pytest.approx(
                sum(j["executed_wall_s"] for j in done)
            )
            # The dispatcher's own busy accounting agrees with the per-job sum.
            assert service.dispatcher.busy_worker_seconds == pytest.approx(
                summary["worker_seconds_total"]
            )
            # A second replay starts its worker accounting fresh too, so the
            # invariant holds on a reused service.
            second = service.replay(synthetic_trace(4, cluster_gpus=8, seed=5))
            assert second.summary["jobs_executed"] == 4
            assert service.dispatcher.busy_worker_seconds == pytest.approx(
                second.summary["worker_seconds_total"]
            )

    def test_model_only_service_has_no_worker_accounting(self):
        report = ReconstructionService(8).replay(synthetic_trace(4, seed=0))
        assert "worker_seconds_total" not in report.summary
        assert all(j["executed_wall_s"] is None for j in report.jobs)

    def test_dispatcher_validation_and_thread_hygiene(self):
        with pytest.raises(ValueError, match="positive integer"):
            BatchedDispatcher(0)
        with pytest.raises(ValueError, match="non-negative integer"):
            ReconstructionService(8, workers=-1)
        service = ReconstructionService(8, backend="blocked", workers=2)
        job = make_job(SMALL)
        assert service.submit(job)
        service.run_until_idle()
        assert job.executed_wall_seconds > 0
        service.close()
        leaked = [
            t for t in threading.enumerate()
            if t.name.startswith("repro-dispatch") and t.is_alive()
        ]
        assert not leaked

    def test_record_with_execution_is_json_serializable(self):
        with ReconstructionService(8, backend="blocked", workers=1) as service:
            job = make_job(SMALL)
            assert service.submit(job)
            service.run_until_idle()
        json.dumps(job.as_record())
        with pytest.raises(ValueError):
            job.mark_executed(2.0, 1.0, workers=1)
        with pytest.raises(ValueError):
            job.mark_executed(0.0, 1.0, workers=0)


# --------------------------------------------------------------------------- #
# CLI surface of the service
# --------------------------------------------------------------------------- #
class TestServiceCLI:
    def test_trace_then_serve(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "workload.json"
        report_path = tmp_path / "report.json"
        assert main(["trace", "--jobs", "20", "--gpus", "8", "--seed", "0",
                     "-o", str(trace_path)]) == 0
        assert main(["serve", "--trace", str(trace_path),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "latency_p99_s" in out and "cache_hit_rate" in out
        report = json.loads(report_path.read_text())
        assert report["summary"]["jobs_completed"] == 20
        assert report["summary"]["cache_hit_rate"] > 0
        assert report["cluster_gpus"] == 8

    def test_serve_missing_trace_exits_2(self, tmp_path):
        from repro.cli import main

        assert main(["serve", "--trace", str(tmp_path / "nope.json")]) == 2

    def test_serve_malformed_trace_exits_2(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["serve", "--trace", str(bad)]) == 2

    def test_submit_prints_completed_record(self, capsys):
        from repro.cli import main

        assert main(["submit", "--problem", SMALL, "--gpus", "4",
                     "--slo", "1000"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "completed"
        assert record["met_slo"] is True


# --------------------------------------------------------------------------- #
# Acquisition scenarios in the service layer
# --------------------------------------------------------------------------- #
class TestScenarioAwareService:
    def key(self, scenario="full", dataset="ds-0"):
        return CacheKey(dataset_id=dataset, ramp_filter="ram-lak",
                        nu=64, nv=64, np_=32, scenario=scenario)

    def test_cache_key_includes_scenario(self):
        """Same projections, different scenario -> miss; identical -> hit."""
        cache = FilteredProjectionCache()
        cache.insert(self.key(scenario="full"), nbytes=10)
        assert not cache.lookup(self.key(scenario="short"))
        assert cache.lookup(self.key(scenario="full"))
        assert self.key("full").object_name != self.key("short").object_name

    def test_for_job_resolves_preset_to_cache_token(self):
        """PR 1's cache can no longer serve full-scan filtering to a
        short-scan job: the job's scenario preset lands in the key."""
        full = CacheKey.for_job(make_job(dataset_id="ds-1"))
        short = CacheKey.for_job(
            make_job(dataset_id="ds-1", scenario="short_scan")
        )
        assert full.scenario == "full"
        assert short.scenario == "short"
        assert full != short
        # Renamed-but-identical protocols share filtered projections.
        assert CacheKey.for_job(
            make_job(dataset_id="ds-1", scenario="full_scan")
        ) == full
        # Unregistered ad-hoc names isolate conservatively (verbatim token).
        assert CacheKey.for_job(
            make_job(dataset_id="ds-1", scenario="custom-protocol")
        ).scenario == "custom-protocol"

    def test_for_job_token_agrees_with_scenarios_for_every_preset(self):
        """There is exactly one scenario cache-identity function.

        The service cache used to carry its own ``scenario_cache_token``
        copy of this mapping; it now delegates to
        :func:`repro.scenarios.cache_token_for`.  Pin the agreement on
        every registered preset so the two layers can never drift again.
        """
        from repro.scenarios import SCENARIO_PRESETS, cache_token_for

        for name, scenario in SCENARIO_PRESETS.items():
            key = CacheKey.for_job(make_job(dataset_id="ds-1", scenario=name))
            assert key.scenario == cache_token_for(name) == scenario.cache_token

    def test_service_cache_misses_across_scenarios(self):
        """End to end: a short-scan job on a cached dataset is not a hit."""
        service = ReconstructionService(8)
        first = make_job(dataset_id="shared", scenario="full_scan")
        assert service.submit(first)
        service.run_until_idle()
        repeat = make_job(dataset_id="shared", scenario="full_scan")
        other = make_job(dataset_id="shared", scenario="short_scan")
        assert service.submit(repeat) and service.submit(other)
        service.run_until_idle()
        assert repeat.cache_hit
        assert not other.cache_hit

    def test_job_round_trips_scenario(self):
        job = make_job(scenario="sparse_view", slo_seconds=60.0)
        record = job.as_record()
        assert record["scenario"] == "sparse_view"
        assert json.dumps(record)  # record stays JSON-serializable
        with pytest.raises(ValueError, match="scenario"):
            make_job(scenario="")

    def test_metrics_count_scenarios(self):
        metrics = ServiceMetrics()
        for scenario in ("full_scan", "short_scan", "short_scan"):
            job = make_job(scenario=scenario)
            job.mark_running(0.0, gpus=1, rows=1, columns=1, cache_hit=False)
            job.mark_completed(1.0)
            metrics.record_completion(job)
        assert metrics.scenario_counts == {"full_scan": 1, "short_scan": 2}
        summary = metrics.summary()
        assert summary["scenario[full_scan]_jobs"] == 1.0
        assert summary["scenario[short_scan]_jobs"] == 2.0

    def test_trace_entry_round_trips_scenario(self, tmp_path):
        entry = TraceEntry(
            job_id="job-0", tenant="t", arrival_seconds=0.0,
            problem=SMALL, dataset_id="ds", scenario="noisy",
        )
        trace = ArrivalTrace(entries=[entry], cluster_gpus=4)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.entries[0].scenario == "noisy"
        assert loaded.jobs()[0].scenario == "noisy"
        # Legacy traces without the field default to full_scan.
        legacy = TraceEntry.from_json(
            {"id": "j", "arrival": 0.0, "problem": SMALL}
        )
        assert legacy.scenario == "full_scan"

    def test_synthetic_trace_scenario_mix(self):
        mixed = synthetic_trace(
            30, seed=5, scenario_mix={"full_scan": 0.5, "short_scan": 0.5}
        )
        scenarios = {e.scenario for e in mixed.entries}
        assert scenarios == {"full_scan", "short_scan"}
        # The mix draws from a separate stream: everything else identical.
        plain = synthetic_trace(30, seed=5)
        assert all(e.scenario == "full_scan" for e in plain.entries)
        for a, b in zip(plain.entries, mixed.entries):
            assert (a.job_id, a.arrival_seconds, a.problem, a.dataset_id,
                    a.priority) == (b.job_id, b.arrival_seconds, b.problem,
                                    b.dataset_id, b.priority)
        with pytest.raises(ValueError, match="sum to a positive"):
            synthetic_trace(5, scenario_mix={"full_scan": 0.0})

    def test_scenario_replay_reports_mix(self):
        trace = synthetic_trace(
            12, cluster_gpus=8, seed=2,
            scenario_mix={"full_scan": 0.6, "sparse_view": 0.4},
        )
        report = ReconstructionService(8).replay(trace)
        mix_keys = [k for k in report.summary if k.startswith("scenario[")]
        assert mix_keys
        assert sum(report.summary[k] for k in mix_keys) == report.summary[
            "jobs_completed"
        ]
        for job in report.jobs:
            if job["state"] == "completed":
                assert job["scenario"] in ("full_scan", "sparse_view")


# --------------------------------------------------------------------------- #
# Plan-driven cache keying (the repro.api front door)
# --------------------------------------------------------------------------- #
class TestPlanDrivenCacheKeying:
    """The filtered-projection cache keys on the plan's filtering identity.

    Two jobs whose plans differ only in execution knobs (``workers``,
    ``backend``, output extent, QoS) must share a cache entry; plans that
    differ in scenario or acquisition geometry must never share one.
    """

    def plan(self, problem=SMALL, **fields):
        from repro.api import plan_for_problem

        return plan_for_problem(problem, target="service", **fields)

    def test_workers_only_difference_shares_cache_entry(self):
        base = self.plan()
        more_workers = base.with_updates(workers=4)
        # Execution identity differs, filtering identity does not.
        assert base.key() != more_workers.key()
        assert base.filter_key() == more_workers.filter_key()
        assert CacheKey.from_plan(base, "shared") == CacheKey.from_plan(
            more_workers, "shared"
        )
        service = ReconstructionService(8)
        first = ReconstructionJob.from_plan(base, dataset_id="shared")
        second = ReconstructionJob.from_plan(more_workers, dataset_id="shared")
        assert service.submit(first)
        service.run_until_idle()
        assert service.submit(second)
        service.run_until_idle()
        assert second.cache_hit
        assert first.as_record()["plan_key"] == base.key()
        assert second.as_record()["plan_key"] == more_workers.key()

    def test_output_extent_difference_shares_cache_entry(self):
        # Filtering sees only the input stack: re-reconstructing the SAME
        # acquisition at another output size reuses the filtering.
        a = self.plan("512x512x1024->256x256x256")
        b = a.with_updates(geometry=a.geometry.with_volume(128, 128, 128))
        assert CacheKey.from_plan(a, "ds") == CacheKey.from_plan(b, "ds")

    def test_acquisition_physics_difference_never_shares(self):
        # Same shapes, different physics (pitch / distances / span) filter
        # differently — the plan's acquisition token must split the keys.
        import dataclasses

        a = self.plan()
        shapes_only = a.geometry
        rescaled = dataclasses.replace(shapes_only, du=shapes_only.du * 2.0)
        short_arc = dataclasses.replace(
            shapes_only, angular_range=shapes_only.angular_range / 2.0
        )
        for other in (rescaled, short_arc):
            b = a.with_updates(geometry=other)
            assert b.filter_key() != a.filter_key()
            assert CacheKey.from_plan(b, "ds") != CacheKey.from_plan(a, "ds")

    def test_submit_plan_rejects_backend_mismatch(self):
        plan = self.plan(backend="vectorized")
        service = ReconstructionService(8, backend="reference")
        with pytest.raises(ValueError, match="backend 'vectorized'"):
            service.submit_plan(plan, dataset_id="ds")
        # The guard lives in submit() itself, so the from_plan + submit
        # path cannot bypass it either.
        job = ReconstructionJob.from_plan(plan, dataset_id="ds")
        with pytest.raises(ValueError, match="backend 'vectorized'"):
            service.submit(job)

    def test_scenario_difference_never_shares(self):
        base = self.plan()
        short = base.with_updates(scenario="short_scan")
        assert base.filter_key() != short.filter_key()
        assert CacheKey.from_plan(base, "shared") != CacheKey.from_plan(
            short, "shared"
        )
        service = ReconstructionService(8)
        first = ReconstructionJob.from_plan(base, dataset_id="shared")
        second = ReconstructionJob.from_plan(short, dataset_id="shared")
        assert service.submit(first)
        service.run_until_idle()
        assert service.submit(second)
        service.run_until_idle()
        assert not second.cache_hit

    def test_geometry_difference_never_shares(self):
        base = self.plan("512x512x1024->256x256x256")
        fewer_views = self.plan("512x512x512->256x256x256")
        wider = self.plan("1024x512x1024->256x256x256")
        assert CacheKey.from_plan(base, "ds") != CacheKey.from_plan(
            fewer_views, "ds"
        )
        assert CacheKey.from_plan(base, "ds") != CacheKey.from_plan(wider, "ds")

    def test_service_submit_plan_round_trip(self):
        plan = self.plan(slo_seconds=1000.0, priority=0, tenant="plan-tenant")
        service = ReconstructionService(8)
        job = service.submit_plan(plan, dataset_id="ds-plan")
        assert job.state is not JobState.REJECTED
        service.run_until_idle()
        assert job.state is JobState.COMPLETED
        assert job.plan_key == plan.key()
        assert job.tenant == "plan-tenant"
        assert job.met_slo is True


# --------------------------------------------------------------------------- #
# Service-layer bugfix regressions (cache eviction, fingerprint dtype,
# dispatcher lock contention, backlog-cap bypass)
# --------------------------------------------------------------------------- #
class TestCacheEvictionRegressions:
    def key(self, dataset):
        return CacheKey(dataset_id=dataset, ramp_filter="ram-lak", nu=64, nv=64, np_=32)

    def test_oversize_insert_is_rejected(self):
        # Pre-fix: an entry larger than the capacity was accepted and the
        # `len > 1` eviction guard kept it resident forever.
        cache = FilteredProjectionCache(capacity_bytes=100)
        with pytest.raises(ValueError, match="exceeds the cache capacity"):
            cache.insert(self.key("big"), nbytes=150)
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_oversize_refresh_is_rejected_without_corrupting_accounting(self):
        cache = FilteredProjectionCache(capacity_bytes=100)
        cache.insert(self.key("a"), nbytes=40)
        with pytest.raises(ValueError, match="exceeds the cache capacity"):
            cache.insert(self.key("a"), nbytes=150)
        assert cache.used_bytes == 40 and cache.contains(self.key("a"))

    def test_used_bytes_is_a_running_total_not_a_rescan(self):
        # Pre-fix, used_bytes re-summed every entry on each access (O(n^2)
        # over an eviction loop).  A running total does not see mutations
        # made behind the cache's back; the re-sum did.
        cache = FilteredProjectionCache(capacity_bytes=1000)
        cache.insert(self.key("a"), nbytes=100)
        next(iter(cache._entries.values())).nbytes = 999
        assert cache.used_bytes == 100

    def test_running_total_tracks_insert_refresh_and_eviction(self):
        cache = FilteredProjectionCache(capacity_bytes=100)
        a, b, c = self.key("a"), self.key("b"), self.key("c")
        cache.insert(a, nbytes=40)
        cache.insert(b, nbytes=40)
        cache.insert(a, nbytes=10)  # refresh shrinks a, moves it to MRU
        assert cache.used_bytes == 50
        cache.insert(c, nbytes=60)  # 110 > 100: evicts b (LRU)
        assert cache.used_bytes == 70
        assert cache.contains(a) and cache.contains(c) and not cache.contains(b)
        assert cache.stats.evictions == 1
        # The running total always agrees with a ground-truth re-sum.
        assert cache.used_bytes == sum(e.nbytes for e in cache._entries.values())


class TestFingerprintDtypeRegression:
    def test_dtype_reinterpretation_changes_fingerprint(self):
        from repro.core.types import ProjectionStack

        data = np.linspace(0.0, 1.0, 2 * 4 * 8, dtype=np.float32).reshape(2, 4, 8)
        angles = np.linspace(0.0, 2 * np.pi, 2, endpoint=False)
        base = ProjectionStack(data=data, angles=angles)
        alias = ProjectionStack(data=data.copy(), angles=angles.copy())
        # Reinterpret the identical buffer as int32: same bytes, same shape,
        # different acquisition.  Pre-fix these aliased one cache entry.
        alias.data = alias.data.view(np.int32)
        assert alias.data.tobytes() == base.data.tobytes()
        assert alias.data.shape == base.data.shape
        assert fingerprint_stack(base) != fingerprint_stack(alias)


class TestDispatcherLockContentionRegression:
    def test_completion_accounting_proceeds_during_long_dispatch(self):
        import time

        from repro.service import AllocationPlan, Placement

        dispatcher = BatchedDispatcher(2, backend="vectorized")
        inner = dispatcher._ensure()
        gate = threading.Event()
        observed_during_dispatch = threading.Event()

        class SlowSubmitExecutor:
            """Stretches the dispatch loop: blocks after the first submit."""

            def __init__(self, executor):
                self._executor = executor
                self._submissions = 0

            def submit(self, fn, *args):
                future = self._executor.submit(fn, *args)
                self._submissions += 1
                if self._submissions == 1:
                    gate.wait(timeout=15.0)
                return future

            def __getattr__(self, name):
                return getattr(self._executor, name)

        dispatcher._executor = SlowSubmitExecutor(inner)

        def watch():
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if dispatcher.jobs_executed >= 1:
                    observed_during_dispatch.set()
                    break
                time.sleep(0.005)
            gate.set()  # always unblock dispatch: fail the assert, not hang

        watcher = threading.Thread(target=watch, name="accounting-watcher")
        watcher.start()
        plan = AllocationPlan(
            gpus=1, rows=1, columns=1, runtime_seconds=1.0, cache_hit=False
        )
        placements = [
            Placement(job=make_job(SMALL), plan=plan, start_seconds=0.0)
            for _ in range(2)
        ]
        try:
            # Pre-fix, dispatch held the dispatcher lock across the whole
            # submit loop, so the first pilot's completion accounting (which
            # needs the same lock) could not land until dispatch returned.
            dispatcher.dispatch(placements)
        finally:
            watcher.join()
            dispatcher.close()
        assert observed_during_dispatch.is_set()
        assert dispatcher.jobs_executed == 2


class TestQueueBacklogEstimationRegression:
    def test_missing_estimate_counts_against_backlog_cap(self):
        # Pre-fix: estimated_seconds=None silently bypassed the cap.
        queue = JobQueue(
            AdmissionPolicy(max_backlog_seconds=10.0), estimator=lambda job: 8.0
        )
        first, second = make_job(), make_job()
        assert first.estimated_seconds is None
        assert queue.offer(first)
        assert first.estimated_seconds == 8.0  # estimate recorded on the job
        assert not queue.offer(second)
        assert second.state is JobState.REJECTED
        assert "backlog" in second.rejection_reason

    def test_default_estimator_derives_from_performance_model(self):
        queue = JobQueue(AdmissionPolicy(max_backlog_seconds=1e9))
        job = make_job(SMALL)
        assert queue.offer(job)
        assert job.estimated_seconds is not None and job.estimated_seconds > 0
        assert queue.backlog_seconds == pytest.approx(job.estimated_seconds)

    def test_unestimatable_job_is_admitted_with_warning(self):
        queue = JobQueue(
            AdmissionPolicy(max_backlog_seconds=10.0), estimator=lambda job: None
        )
        job = make_job()
        with pytest.warns(RuntimeWarning, match="no runtime estimate"):
            assert queue.offer(job)
        assert job.state is JobState.QUEUED

    def test_no_cap_never_consults_the_estimator(self):
        def exploding(job):
            raise AssertionError("estimator must not run without a backlog cap")

        queue = JobQueue(estimator=exploding)
        assert queue.offer(make_job())
