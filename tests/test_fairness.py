"""Fair-share scheduling invariants: DRR shares, quotas, aging, determinism.

These tests drive the :class:`~repro.service.fairness.FairShareQueue`
directly with hand-built jobs of known cost, so every invariant is exact:
weight-proportional interleaving, bounded starvation under aging, quota
rejections carrying Retry-After hints, and bit-identical scheduling orders
on replays.
"""

import math
import types

import pytest

from repro.core.types import problem_from_string
from repro.obs import MetricsRegistry
from repro.service import (
    AdmissionPolicy,
    FairShareQueue,
    ReconstructionJob,
    ReconstructionService,
    jains_index,
    synthetic_trace,
)
from repro.service.metrics import ServiceMetrics
from repro.service.queue import QUOTA_REJECTION_PREFIX

pytestmark = pytest.mark.fairness

PROBLEM = problem_from_string("48x48x24->32x32x32")


def make_job(
    tenant: str,
    job_id: str,
    *,
    cost: float = 1.0,
    arrival: float = 0.0,
    priority: int = 1,
    slo: float = None,
    weight: float = None,
    max_inflight: int = None,
) -> ReconstructionJob:
    job = ReconstructionJob(
        problem=PROBLEM,
        tenant=tenant,
        dataset_id=f"ds-{job_id}",
        priority=priority,
        slo_seconds=slo,
        arrival_seconds=arrival,
        tenant_weight=weight,
        max_inflight=max_inflight,
        job_id=job_id,
    )
    job.estimated_seconds = cost
    return job


def fill(queue: FairShareQueue, jobs) -> None:
    for job in jobs:
        assert queue.offer(job), job.rejection_reason


def running_placement(job: ReconstructionJob):
    """The slice of a Placement that scheduling_order consults."""
    return types.SimpleNamespace(job=job)


# --------------------------------------------------------------------------- #
# Jain's fairness index
# --------------------------------------------------------------------------- #
class TestJainsIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jains_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jains_index([5.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_is_nan(self):
        assert math.isnan(jains_index([]))

    def test_all_zero_is_fair_by_convention(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jains_index([1.0, -1.0])


# --------------------------------------------------------------------------- #
# Weighted DRR shares
# --------------------------------------------------------------------------- #
class TestWeightedShares:
    def test_two_to_one_weights_interleave_two_to_one(self):
        policy = AdmissionPolicy(
            tenant_weights={"a": 2.0, "b": 1.0}, quantum_seconds=1.0
        )
        queue = FairShareQueue(policy)
        fill(queue, [make_job("a", f"a-{i}", cost=1.0) for i in range(6)])
        fill(queue, [make_job("b", f"b-{i}", cost=1.0) for i in range(6)])
        order = queue.scheduling_order(0.0)
        assert len(order) == 12
        # Each DRR round grants a two unit-cost jobs and b one: every
        # prefix of complete rounds holds the 2:1 share exactly.
        first_six = [job.tenant for job in order[:6]]
        assert first_six.count("a") == 4
        assert first_six.count("b") == 2

    def test_equal_weights_alternate(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=1.0)
        )
        fill(queue, [make_job("a", f"a-{i}") for i in range(3)])
        fill(queue, [make_job("b", f"b-{i}") for i in range(3)])
        tenants = [job.tenant for job in queue.scheduling_order(0.0)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_plan_carried_weight_is_adopted_for_unconfigured_tenant(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=1.0)
        )
        fill(queue, [make_job("vip", f"v-{i}", weight=3.0) for i in range(6)])
        fill(queue, [make_job("std", f"s-{i}") for i in range(6)])
        assert queue.weight_of("vip") == 3.0
        first_four = [j.tenant for j in queue.scheduling_order(0.0)[:4]]
        assert first_four.count("vip") == 3

    def test_operator_weights_beat_plan_overrides(self):
        queue = FairShareQueue(
            AdmissionPolicy(tenant_weights={"vip": 1.0}, quantum_seconds=1.0)
        )
        fill(queue, [make_job("vip", "v-0", weight=100.0)])
        assert queue.weight_of("vip") == 1.0

    def test_attained_service_lets_shortchanged_tenant_catch_up(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=1.0)
        )
        a0 = make_job("a", "a-0")
        fill(queue, [a0])
        queue.remove(a0)  # a has attained service; b has none
        fill(queue, [make_job("a", "a-1"), make_job("b", "b-0")])
        assert [j.tenant for j in queue.scheduling_order(0.0)] == ["b", "a"]

    def test_within_tenant_order_stays_priority_then_deadline(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=10.0)
        )
        urgent = make_job("a", "a-urgent", priority=0, arrival=5.0)
        relaxed = make_job("a", "a-relaxed", priority=2, arrival=0.0)
        fill(queue, [relaxed, urgent])
        assert [j.job_id for j in queue.scheduling_order(10.0)] == [
            "a-urgent", "a-relaxed",
        ]


# --------------------------------------------------------------------------- #
# Quotas
# --------------------------------------------------------------------------- #
class TestQuotas:
    def test_depth_quota_rejects_with_retry_after(self):
        queue = FairShareQueue(
            AdmissionPolicy(max_queue_depth_per_tenant=2)
        )
        fill(queue, [make_job("a", "a-0", cost=7.0), make_job("a", "a-1", cost=7.0)])
        extra = make_job("a", "a-2")
        assert not queue.offer(extra)
        assert extra.rejection_reason.startswith(QUOTA_REJECTION_PREFIX)
        assert extra.retry_after_seconds == pytest.approx(14.0)
        assert queue.quota_rejections == {"a": 1}
        # The other tenant is unaffected by a's quota.
        assert queue.offer(make_job("b", "b-0"))

    def test_quota_rejections_reach_the_obs_registry(self):
        obs = MetricsRegistry()
        queue = FairShareQueue(
            AdmissionPolicy(max_queue_depth_per_tenant=1), obs=obs
        )
        fill(queue, [make_job("a", "a-0")])
        queue.offer(make_job("a", "a-1"))
        snap = obs.snapshot()
        assert snap["service.fairness.quota_rejections"] == 1.0
        assert snap["service.fairness.quota_rejections[tenant=a]"] == 1.0

    def test_inflight_cap_withholds_but_never_rejects(self):
        queue = FairShareQueue(
            AdmissionPolicy(max_inflight_per_tenant=1, quantum_seconds=1.0)
        )
        queued = make_job("a", "a-1")
        fill(queue, [queued, make_job("b", "b-0")])
        running = [running_placement(make_job("a", "a-0"))]
        order = queue.scheduling_order(0.0, running)
        # a is at its cap: its queued job is withheld, not rejected.
        assert [j.job_id for j in order] == ["b-0"]
        assert queued.rejection_reason is None
        # Once a's running job finishes, the withheld job is schedulable.
        assert [j.job_id for j in queue.scheduling_order(0.0)] == [
            "a-1", "b-0",
        ]

    def test_plan_carried_inflight_cap_is_adopted(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=1.0)
        )
        fill(queue, [make_job("a", "a-1", max_inflight=1)])
        running = [running_placement(make_job("a", "a-0"))]
        assert queue.scheduling_order(0.0, running) == []


# --------------------------------------------------------------------------- #
# Starvation aging
# --------------------------------------------------------------------------- #
class TestAging:
    def test_aged_job_of_light_tenant_preempts_heavy_backlog(self):
        policy = AdmissionPolicy(
            tenant_weights={"heavy": 1000.0, "light": 1.0},
            quantum_seconds=1.0,
            aging_seconds=30.0,
        )
        queue = FairShareQueue(policy)
        fill(queue, [make_job("heavy", f"h-{i}", arrival=25.0) for i in range(8)])
        starved = make_job("light", "l-0", arrival=0.0, slo=40.0)
        fill(queue, [starved])
        order = queue.scheduling_order(31.0)
        assert order[0].job_id == "l-0"
        assert queue.aged_promotions == 1

    def test_only_one_job_per_tenant_ages_per_cycle(self):
        policy = AdmissionPolicy(
            tenant_weights={"heavy": 1000.0, "light": 1.0},
            quantum_seconds=1.0,
            aging_seconds=10.0,
        )
        queue = FairShareQueue(policy)
        fill(queue, [make_job("light", f"l-{i}", arrival=0.0) for i in range(5)])
        fill(queue, [make_job("heavy", "h-0", arrival=99.0)])
        order = queue.scheduling_order(100.0)
        # All five light jobs waited past aging, but only the oldest jumps;
        # the rest take the normal DRR path, so aging cannot collapse the
        # whole order into FIFO.
        assert order[0].tenant == "light"
        assert queue.aged_promotions == 1

    def test_no_aging_without_the_knob(self):
        queue = FairShareQueue(
            AdmissionPolicy(fair_share=True, quantum_seconds=1.0)
        )
        fill(queue, [make_job("a", "a-0", arrival=0.0)])
        queue.scheduling_order(1e9)
        assert queue.aged_promotions == 0


# --------------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def build(self):
        policy = AdmissionPolicy(
            tenant_weights={"a": 2.0, "b": 1.0, "c": 0.5},
            quantum_seconds=2.0,
            aging_seconds=50.0,
        )
        queue = FairShareQueue(policy)
        for tenant, n in (("a", 7), ("b", 5), ("c", 9)):
            fill(queue, [
                make_job(tenant, f"{tenant}-{i}", cost=0.5 + (i % 3),
                         arrival=float(i), priority=i % 2)
                for i in range(n)
            ])
        return queue

    def test_same_snapshot_yields_identical_order(self):
        first = [j.job_id for j in self.build().scheduling_order(20.0)]
        second = [j.job_id for j in self.build().scheduling_order(20.0)]
        assert first == second
        assert len(first) == 21

    def test_order_covers_every_waiting_job_exactly_once(self):
        queue = self.build()
        order = [j.job_id for j in queue.scheduling_order(20.0)]
        assert sorted(order) == sorted(j.job_id for j in queue.ordered())


# --------------------------------------------------------------------------- #
# Policy validation and queue selection
# --------------------------------------------------------------------------- #
class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"tenant_weights": {"a": 0.0}},
        {"tenant_weights": {"a": -1.0}},
        {"default_tenant_weight": 0.0},
        {"max_inflight_per_tenant": 0},
        {"max_queue_depth_per_tenant": 0},
        {"quantum_seconds": 0.0},
        {"aging_seconds": 0.0},
    ])
    def test_invalid_fairness_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_fairness_enabled_flags(self):
        assert not AdmissionPolicy().fairness_enabled
        assert AdmissionPolicy(fair_share=True).fairness_enabled
        assert AdmissionPolicy(tenant_weights={"a": 2.0}).fairness_enabled
        assert AdmissionPolicy(max_inflight_per_tenant=4).fairness_enabled
        assert AdmissionPolicy(aging_seconds=30.0).fairness_enabled

    def test_service_picks_fair_queue_when_enabled(self):
        with ReconstructionService(
            4, admission=AdmissionPolicy(fair_share=True)
        ) as service:
            assert isinstance(service.queue, FairShareQueue)
        with ReconstructionService(4, admission=AdmissionPolicy()) as service:
            assert not isinstance(service.queue, FairShareQueue)


# --------------------------------------------------------------------------- #
# Metrics integration
# --------------------------------------------------------------------------- #
class TestFairnessMetrics:
    def test_summary_emits_fairness_keys_under_fair_share(self):
        policy = AdmissionPolicy(
            max_depth=500,
            tenant_weights={"a": 2.0, "b": 1.0},
        )
        trace = synthetic_trace(
            30, seed=11, heavy_fraction=0.0,
            tenant_mix={"a": 1.0, "b": 1.0},
        )
        with ReconstructionService(16, admission=policy) as service:
            report = service.replay(trace)
        summary = report.summary
        assert 0.0 < summary["fairness_index"] <= 1.0
        shares = [
            v for k, v in summary.items() if k.endswith("_share_of_service")
        ]
        assert shares and sum(shares) == pytest.approx(1.0)

    def test_summary_has_no_fairness_keys_without_fair_share(self):
        trace = synthetic_trace(10, seed=1, heavy_fraction=0.0)
        with ReconstructionService(16) as service:
            report = service.replay(trace)
        assert "fairness_index" not in report.summary
        assert "quota_rejections" not in report.summary

    def test_quota_rejections_counted_per_tenant(self):
        metrics = ServiceMetrics()
        job = make_job("a", "a-0")
        job.mark_rejected(f"{QUOTA_REJECTION_PREFIX}: tenant 'a' capped",
                          retry_after_seconds=2.0)
        metrics.record_rejection(job)
        other = make_job("b", "b-0")
        other.mark_rejected("infeasible: no decomposition")
        metrics.record_rejection(other)
        assert metrics.quota_rejections == {"a": 1}
        summary = metrics.summary()
        assert summary["quota_rejections"] == 1.0
        assert summary["tenant[a]_quota_rejections"] == 1.0
        assert "tenant[b]_quota_rejections" not in summary
