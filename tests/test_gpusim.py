"""Tests for the simulated GPU substrate (device, memory, warp, kernels, cost model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import default_geometry_for_problem, fdk_weight_and_filter
from repro.core.backprojection import backproject_proposed, backproject_standard
from repro.core.types import problem_from_string
from repro.gpusim import (
    BP_L1,
    BP_TEX,
    KERNEL_VARIANTS,
    L1_TRAN,
    RTK_32,
    TESLA_V100,
    TEX_TRAN,
    BackprojectionCostModel,
    DeviceMemoryPool,
    DeviceOutOfMemoryError,
    DeviceSpec,
    PCIeModel,
    Warp,
    get_kernel,
    predict_table4,
    shfl_bp_reference,
)
from repro.bench import TABLE4_PROBLEMS


class TestDeviceSpec:
    def test_v100_constants(self):
        assert TESLA_V100.global_memory_bytes == 16 * 2**30
        assert TESLA_V100.warp_size == 32
        assert TESLA_V100.effective_dram_bandwidth < TESLA_V100.dram_bandwidth

    def test_memory_fit_checks(self):
        assert TESLA_V100.fits_in_memory(8 * 2**30)
        assert not TESLA_V100.fits_in_memory(17 * 2**30)

    def test_max_subvolume(self):
        batch = 32 * 2048 * 2048 * 4
        assert TESLA_V100.max_subvolume_bytes(batch) == 16 * 2**30 - batch

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", global_memory_bytes=0, dram_bandwidth=1, fp32_flops=1,
                l2_cache_bytes=1, sm_count=1,
            )


class TestDeviceMemoryPool:
    def test_allocate_and_free(self):
        pool = DeviceMemoryPool(TESLA_V100)
        alloc = pool.allocate("vol", (1024, 1024), np.float32)
        assert alloc.nbytes == 1024 * 1024 * 4
        assert pool.used_bytes == alloc.nbytes
        pool.free("vol")
        assert pool.used_bytes == 0

    def test_out_of_memory(self):
        pool = DeviceMemoryPool(TESLA_V100, materialize=False)
        pool.allocate("a", (2 * 2**30,), np.float32)  # 8 GiB
        with pytest.raises(DeviceOutOfMemoryError):
            pool.allocate("b", (3 * 2**30,), np.float32)  # 12 GiB more

    def test_duplicate_name_rejected(self):
        pool = DeviceMemoryPool(TESLA_V100, materialize=False)
        pool.allocate("a", (16,))
        with pytest.raises(ValueError):
            pool.allocate("a", (16,))

    def test_peak_tracking(self):
        pool = DeviceMemoryPool(TESLA_V100, materialize=False)
        pool.allocate("a", (1000,))
        pool.free("a")
        pool.allocate("b", (10,))
        assert pool.peak_bytes == 4000

    def test_section_415_constraint_check(self):
        pool = DeviceMemoryPool(TESLA_V100, materialize=False)
        # 8 GB sub-volume + 32 x 2k^2 batch fits in 16 GB
        assert pool.can_fit_reconstruction(2 * 2**30, 2048, 2048, 32)
        # 16 GB sub-volume does not
        assert not pool.can_fit_reconstruction(4 * 2**30, 2048, 2048, 32)

    def test_free_unknown_raises(self):
        pool = DeviceMemoryPool(TESLA_V100, materialize=False)
        with pytest.raises(KeyError):
            pool.free("nothing")


class TestWarp:
    def test_shuffle_broadcasts_from_lane(self):
        warp = Warp(width=8)
        warp.broadcast_write("Z", np.arange(8))
        received = warp.shfl_sync(0xFF, "Z", 5)
        assert np.all(received == 5.0)

    def test_read_unwritten_register_is_zero(self):
        warp = Warp(width=4)
        assert warp.read(2, "U") == 0.0

    def test_lane_bounds_checked(self):
        warp = Warp(width=4)
        with pytest.raises(IndexError):
            warp.write(4, "Z", 1.0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Warp(width=0)


class TestKernelVariants:
    def test_table3_characteristics(self):
        # The characteristics matrix of Table 3, row by row.
        assert RTK_32.characteristics() == {
            "Texture cache": True, "L1 cache": False,
            "Transpose projection": False, "Transpose Volume": False,
        } or RTK_32.characteristics() == {
            "Texture cache": True, "L1 cache": False,
            "Transpose projection": False, "Transpose volume": False,
        }
        assert L1_TRAN.characteristics()["L1 cache"] is True
        assert L1_TRAN.characteristics()["Transpose projection"] is True
        assert BP_L1.characteristics()["Texture cache"] is False
        assert BP_L1.characteristics()["L1 cache"] is False
        assert TEX_TRAN.characteristics()["Transpose projection"] is True
        assert BP_TEX.characteristics()["Transpose projection"] is False

    def test_only_rtk_runs_algorithm2(self):
        assert RTK_32.algorithm == "standard"
        assert all(k.algorithm == "proposed" for k in KERNEL_VARIANTS if k is not RTK_32)

    def test_get_kernel_case_insensitive(self):
        assert get_kernel("l1-tran") is L1_TRAN
        with pytest.raises(ValueError):
            get_kernel("unknown-kernel")

    def test_rtk_output_size_limit(self):
        # RTK double-buffers the volume, so a 9 GiB output needs 18 GiB of
        # device memory and cannot run on a 16 GiB V100; the proposed
        # kernels write in place.
        assert RTK_32.device_output_bytes(9 * 2**30) > TESLA_V100.global_memory_bytes
        assert L1_TRAN.device_output_bytes(9 * 2**30) < TESLA_V100.global_memory_bytes
        assert RTK_32.supports_output_bytes(8 * 2**30)

    def test_kernel_execution_matches_reference(self, small_geometry, small_filtered):
        std_ref = backproject_standard(small_filtered, small_geometry)
        new_ref = backproject_proposed(small_filtered, small_geometry)
        rtk = RTK_32.backproject(small_filtered, small_geometry)
        l1 = L1_TRAN.backproject(small_filtered, small_geometry)
        np.testing.assert_allclose(rtk.data, std_ref.data, atol=1e-6)
        np.testing.assert_allclose(l1.data, new_ref.data, atol=1e-6)

    def test_all_kernels_agree_numerically(self, small_geometry, small_filtered):
        volumes = [k.backproject(small_filtered, small_geometry).data for k in KERNEL_VARIANTS]
        for other in volumes[1:]:
            np.testing.assert_allclose(volumes[0], other, atol=2e-4)


class TestShflBPReference:
    def test_matches_algorithm4_for_single_voxel(self):
        geo = default_geometry_for_problem(nu=32, nv=32, np_=8, nx=12, ny=12, nz=12)
        from repro.core import EllipsoidPhantom, forward_project_analytic, shepp_logan_ellipsoids

        stack = forward_project_analytic(
            EllipsoidPhantom(shepp_logan_ellipsoids()), geo
        )
        filt = fdk_weight_and_filter(stack, geo)
        volume = backproject_proposed(filt, geo)
        i, j, k = 4, 6, 3
        total, total_mirror = shfl_bp_reference(filt, geo, (i, j, k))
        k_mirror = geo.nz - 1 - k
        assert total == pytest.approx(float(volume.data[k, j, i]), rel=1e-3, abs=1e-4)
        assert total_mirror == pytest.approx(float(volume.data[k_mirror, j, i]), rel=1e-3, abs=1e-4)

    def test_rejects_oversized_batch(self, small_geometry, small_filtered):
        big = small_filtered
        if big.np_ <= 32:
            pytest.skip("fixture batch not larger than a warp")

    def test_rejects_voxel_outside_volume(self, small_geometry, small_filtered):
        with pytest.raises(ValueError):
            shfl_bp_reference(small_filtered.subset(range(8)), small_geometry, (999, 0, 0))


class TestCostModel:
    @pytest.fixture(scope="class")
    def table4(self):
        rows = predict_table4(TABLE4_PROBLEMS)
        return {r["problem"]: r for r in rows}

    def test_proposed_kernel_wins_at_small_alpha(self, table4):
        # The headline claim: L1-Tran beats RTK-32 for typical problems (alpha <= 1),
        # by a factor of at least ~1.4 (the paper reports up to 1.6-1.8x).
        row = table4["512x512x1024->1024x1024x1024"]
        assert row["L1-Tran"] > 1.4 * row["RTK-32"]

    def test_rtk_wins_for_tiny_outputs_with_huge_projections(self, table4):
        # The crossover of Table 4: 2k^2 projections into a 128^3 volume.
        row = table4["2048x2048x1024->128x128x128"]
        assert row["RTK-32"] > row["L1-Tran"]
        assert row["RTK-32"] > row["Bp-L1"]

    def test_gups_decreases_with_alpha_for_every_kernel(self, table4):
        # Within one input size, larger outputs (smaller alpha) give higher GUPS.
        for kernel in ("RTK-32", "L1-Tran", "Bp-L1", "Bp-Tex", "Tex-Tran"):
            series = [
                table4[f"1024x1024x1024->{s}"][kernel]
                for s in ("128x128x128", "256x256x256", "512x512x512", "1024x1024x1024")
            ]
            values = [v for v in series if v == v]
            assert values == sorted(values), f"{kernel} not monotone: {series}"

    def test_bp_l1_sensitive_to_projection_size(self, table4):
        # Bp-L1's plain global loads collapse once the projection exceeds L2.
        small_proj = table4["512x512x1024->1024x1024x1024"]["Bp-L1"]
        large_proj = table4["2048x2048x1024->1024x1024x1024"]["Bp-L1"]
        assert small_proj > 1.5 * large_proj

    def test_l1_tran_beats_bp_l1_everywhere(self, table4):
        for row in table4.values():
            if row["Bp-L1"] == row["Bp-L1"]:  # not NaN
                assert row["L1-Tran"] > row["Bp-L1"]

    def test_rtk_na_for_outputs_beyond_8gb(self, table4):
        row = table4["512x512x1024->1024x1024x2048"]
        assert row["RTK-32"] != row["RTK-32"]  # NaN marks the paper's N/A

    def test_timing_breakdown_components_positive(self):
        model = BackprojectionCostModel()
        timing = model.timing(L1_TRAN, problem_from_string("512x512x1024->512x512x512"))
        assert timing.prep_seconds > 0
        assert timing.update_seconds > 0
        assert timing.total_seconds > timing.update_seconds
        assert timing.gups > 0

    def test_throughput_scales_with_device(self):
        p = problem_from_string("512x512x1024->512x512x512")
        from repro.gpusim import A100_40GB

        v100 = BackprojectionCostModel(TESLA_V100).gups(L1_TRAN, p)
        a100 = BackprojectionCostModel(A100_40GB).gups(L1_TRAN, p)
        assert a100 > v100


class TestPCIeModel:
    def test_transfer_time_matches_paper_anchor(self):
        # Section 5.3.3: 32 GB over two PCIe links in ~2.6-2.7 s.
        model = PCIeModel()
        seconds = model.node_d2h_seconds(32 * 10**9)
        assert seconds == pytest.approx(32e9 / (2 * 11.9e9), rel=0.05)

    def test_contention_halves_per_gpu_bandwidth(self):
        model = PCIeModel()
        assert model.per_gpu_bandwidth == pytest.approx(11.9e9 / 2)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIeModel().transfer_seconds(-1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            PCIeModel(links_per_node=0)
