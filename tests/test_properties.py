"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import apply_ramp_filter
from repro.core.types import ReconstructionProblem, Volume
from repro.mpi.datatypes import ReduceOp
from repro.pipeline import CircularBuffer, Decomposition, IFDKConfig
from repro.core import default_geometry_for_problem


problem_strategy = st.builds(
    ReconstructionProblem,
    nu=st.integers(1, 4096),
    nv=st.integers(1, 4096),
    np_=st.integers(1, 8192),
    nx=st.integers(1, 8192),
    ny=st.integers(1, 8192),
    nz=st.integers(1, 8192),
)


@given(problem=problem_strategy)
@settings(max_examples=100, deadline=None)
def test_problem_identities(problem):
    """alpha, updates and byte counts are mutually consistent for any problem."""
    assert problem.alpha == pytest.approx(problem.input_pixels / problem.output_voxels)
    assert problem.updates == problem.output_voxels * problem.np_
    assert problem.input_bytes() == problem.input_pixels * 4
    # GUPS is inversely proportional to time.
    assert problem.gups(2.0) == pytest.approx(problem.gups(1.0) / 2.0)


@given(
    nx=st.integers(1, 12), ny=st.integers(1, 12), nz=st.integers(1, 12),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_volume_kmajor_roundtrip_is_lossless(nx, ny, nz, seed):
    rng = np.random.default_rng(seed)
    volume = Volume(data=rng.random((nz, ny, nx)).astype(np.float32))
    np.testing.assert_array_equal(Volume.from_kmajor(volume.to_kmajor()).data, volume.data)


@given(
    rows=st.integers(1, 8),
    columns=st.integers(1, 8),
    proj_per_rank=st.integers(1, 4),
    slab=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_decomposition_partitions_any_grid(rows, columns, proj_per_rank, slab):
    """For any R x C grid the decomposition covers inputs and outputs exactly once."""
    geometry = default_geometry_for_problem(
        nu=16, nv=16,
        np_=rows * columns * proj_per_rank,
        nx=8, ny=8, nz=rows * slab,
    )
    config = IFDKConfig(geometry=geometry, rows=rows, columns=columns)
    Decomposition(config).verify_complete()
    assert config.projections_per_rank == proj_per_rank
    assert config.slab_thickness == slab


@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20),
    nbuffers=st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_reduce_ops_match_numpy(values, nbuffers):
    buffers = [np.array(values, dtype=np.float64) * (i + 1) for i in range(nbuffers)]
    stacked = np.stack(buffers)
    np.testing.assert_allclose(ReduceOp.SUM.combine(buffers), stacked.sum(axis=0), rtol=1e-9)
    np.testing.assert_allclose(ReduceOp.MAX.combine(buffers), stacked.max(axis=0))
    np.testing.assert_allclose(ReduceOp.MIN.combine(buffers), stacked.min(axis=0))


@given(items=st.lists(st.integers(), max_size=30), capacity=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_circular_buffer_preserves_order_and_counts(items, capacity):
    buf = CircularBuffer(capacity=max(capacity, len(items), 1))
    for item in items:
        buf.put(item)
    buf.close()
    assert list(buf) == items
    assert buf.total_put == len(items)
    assert buf.total_got == len(items)


@given(
    n_rows=st.integers(1, 6),
    width=st.integers(8, 64),
    seed=st.integers(0, 1000),
    scale=st.floats(0.1, 10.0),
)
@settings(max_examples=30, deadline=None)
def test_ramp_filter_is_linear_operator(n_rows, width, seed, scale):
    rng = np.random.default_rng(seed)
    rows = rng.random((n_rows, width)).astype(np.float32)
    scaled = apply_ramp_filter(rows * np.float32(scale), tau=1.0)
    reference = apply_ramp_filter(rows, tau=1.0) * np.float32(scale)
    np.testing.assert_allclose(scaled, reference, atol=1e-3 * scale)
