"""End-to-end tests of the distributed iFDK framework.

The key invariant (Section 4.1.1): the distributed reconstruction — columns
partitioning the projections, rows partitioning the volume, AllGather within
columns, Reduce within rows — produces exactly the same volume as the
single-node FDK pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EllipsoidPhantom,
    default_geometry_for_problem,
    forward_project_analytic,
    reconstruct_fdk,
    shepp_logan_ellipsoids,
)
from repro.pfs import SimulatedPFS
from repro.pipeline import IFDKConfig, IFDKFramework


@pytest.fixture(scope="module")
def geometry():
    return default_geometry_for_problem(nu=48, nv=48, np_=16, nx=32, ny=32, nz=32)


@pytest.fixture(scope="module")
def projections(geometry):
    return forward_project_analytic(EllipsoidPhantom(shepp_logan_ellipsoids()), geometry)


@pytest.fixture(scope="module")
def reference_volume(geometry, projections):
    return reconstruct_fdk(projections, geometry, algorithm="proposed")


@pytest.mark.parametrize("rows,columns", [(2, 1), (1, 4), (4, 2), (2, 4)])
def test_distributed_matches_single_node(geometry, projections, reference_volume, rows, columns):
    config = IFDKConfig(geometry=geometry, rows=rows, columns=columns)
    result = IFDKFramework(config).reconstruct(projections)
    scale = np.abs(reference_volume.data).max()
    np.testing.assert_allclose(
        result.volume.data, reference_volume.data, atol=5e-6 * max(scale, 1.0)
    )


def test_rtk_kernel_also_matches(geometry, projections, reference_volume):
    config = IFDKConfig(geometry=geometry, rows=2, columns=2, kernel="RTK-32")
    result = IFDKFramework(config).reconstruct(projections)
    np.testing.assert_allclose(result.volume.data, reference_volume.data, atol=1e-4)


def test_run_result_reports_statistics(geometry, projections):
    config = IFDKConfig(geometry=geometry, rows=2, columns=2)
    result = IFDKFramework(config).reconstruct(projections)
    assert result.wall_seconds > 0
    assert result.gups > 0
    assert result.modelled.t_runtime > 0
    assert result.modelled_gups > 0
    assert len(result.rank_results) == 4
    # Every rank filtered its share and back-projected its column's share.
    for rank_result in result.rank_results:
        assert rank_result.projections_filtered == config.projections_per_rank
        assert rank_result.projections_backprojected == config.projections_per_column
    # Exactly R ranks stored a slab (the row roots), covering the volume.
    slabs = [r.stored_slab for r in result.rank_results if r.stored_slab is not None]
    assert len(slabs) == config.rows
    assert sorted(s[0] for s in slabs) == [0, 16]
    totals = result.stage_totals()
    assert totals["backprojection"] > 0
    assert np.isfinite(result.mean_overlap_delta())


def test_stage_input_validates_shape(geometry, projections):
    other = default_geometry_for_problem(nu=32, nv=32, np_=16, nx=32, ny=32, nz=32)
    config = IFDKConfig(geometry=other, rows=2, columns=2)
    framework = IFDKFramework(config)
    with pytest.raises(ValueError):
        framework.stage_input(projections)


def test_reconstruct_from_prestaged_pfs(geometry, projections, reference_volume):
    pfs = SimulatedPFS()
    config = IFDKConfig(geometry=geometry, rows=2, columns=2)
    framework = IFDKFramework(config, pfs=pfs)
    framework.stage_input(projections)
    result = framework.reconstruct()  # no stack argument: read from the PFS
    np.testing.assert_allclose(result.volume.data, reference_volume.data, atol=1e-4)


def test_device_memory_constraint_enforced(geometry):
    from repro.gpusim import DeviceSpec

    tiny_device = DeviceSpec(
        name="tiny", global_memory_bytes=64 * 1024, dram_bandwidth=1e9,
        fp32_flops=1e9, l2_cache_bytes=1024, sm_count=1,
    )
    config = IFDKConfig(geometry=geometry, rows=2, columns=2, device=tiny_device)
    with pytest.raises(ValueError):
        IFDKFramework(config)
