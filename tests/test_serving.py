"""Tests for the durable serving layer: job store, on-disk cache,
process dispatcher and the HTTP front door.

Fast tests (journal replay, disk-cache semantics, in-process restart
recovery, HTTP endpoints) run in tier-1.  Tests that spawn real worker
processes or kill a subprocess are additionally marked ``slow`` — the CI
``service-serving`` job runs them with ``-m serving``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import plan_for_problem
from repro.core.types import ProjectionStack, problem_from_string
from repro.core import default_geometry_for_problem
from repro.obs import MetricsRegistry
from repro.service import (
    AdmissionPolicy,
    CacheKey,
    JobState,
    JobStore,
    OnDiskFilteredCache,
    ProcessDispatcher,
    ReconstructionJob,
    ReconstructionService,
    ServiceHTTPServer,
)

pytestmark = pytest.mark.serving

SMALL = "512x512x1024->256x256x256"
PILOT = "32x32x16->16x16x16"


def make_job(problem=SMALL, **kwargs) -> ReconstructionJob:
    return ReconstructionJob(problem=problem_from_string(problem), **kwargs)


def make_filtered_stack(nu=8, nv=8, np_=4, seed=0) -> ProjectionStack:
    geometry = default_geometry_for_problem(
        nu=nu, nv=nv, np_=np_, nx=4, ny=4, nz=4
    )
    rng = np.random.default_rng(seed)
    return ProjectionStack(
        data=rng.standard_normal((np_, nv, nu)).astype(np.float32),
        angles=geometry.angles,
        filtered=True,
    )


# --------------------------------------------------------------------------- #
# Job store: journal + recovery
# --------------------------------------------------------------------------- #
class TestJobStore:
    def test_round_trip_of_all_lifecycle_events(self, tmp_path):
        store = JobStore(tmp_path)
        done = make_job(job_id="done", dataset_id="ds-1", slo_seconds=60.0)
        store.record_submitted(done)
        store.record_queued(done)
        done.mark_running(1.0, gpus=4, rows=1, columns=4, cache_hit=True,
                          filter_seconds=0.5, backprojection_seconds=2.0)
        store.record_placed(done, 9.0)
        done.mark_executed(0.1, 0.4, workers=2)
        done.execution_attempts = 1
        done.pilot_cache_hit = True
        store.record_executed(done)
        done.mark_completed(9.0)
        store.record_completed(done)
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert len(recovered) == 1 and not recovered.pending
        job = recovered.completed[0]
        assert job.job_id == "done"
        assert job.state is JobState.COMPLETED
        assert job.start_seconds == 1.0 and job.finish_seconds == 9.0
        assert job.gpus == 4 and job.cache_hit is True
        assert job.slo_seconds == 60.0 and job.met_slo is True
        assert job.pilot_cache_hit is True and job.workers == 2

    def test_in_flight_jobs_recover_as_fresh_pending(self, tmp_path):
        store = JobStore(tmp_path)
        queued = make_job(job_id="q", arrival_seconds=3.0)
        store.record_submitted(queued)
        store.record_queued(queued)
        placed = make_job(job_id="p", arrival_seconds=4.0)
        store.record_submitted(placed)
        store.record_queued(placed)
        placed.mark_running(5.0, gpus=2, rows=1, columns=2, cache_hit=False)
        store.record_placed(placed, 30.0)
        store.close()

        recovered = JobStore(tmp_path).recover()
        ids = {job.job_id for job in recovered.pending}
        assert ids == {"q", "p"}
        for job in recovered.pending:
            # Placed-but-incomplete restarts from scratch: at-least-once.
            assert job.state is JobState.PENDING
            assert job.start_seconds is None and job.gpus is None
        by_id = {job.job_id: job for job in recovered.pending}
        assert by_id["q"].arrival_seconds == 3.0

    def test_terminal_classification(self, tmp_path):
        store = JobStore(tmp_path)
        rej = make_job(job_id="rej")
        store.record_submitted(rej)
        rej.mark_rejected("queue full")
        store.record_rejected(rej)
        bad = make_job(job_id="bad")
        store.record_submitted(bad)
        store.record_queued(bad)
        bad.mark_failed("pilot worker crashed")
        store.record_failed(bad)
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert not recovered.pending and not recovered.completed
        assert recovered.rejected[0].rejection_reason == "queue full"
        assert recovered.failed[0].state is JobState.FAILED
        assert recovered.failed[0].failure_reason == "pilot worker crashed"

    def test_rejournaled_job_recovers_exactly_once(self, tmp_path):
        # A recovery re-submits in-flight jobs, which re-journals them; the
        # next recovery must still see one job, in its latest state.
        store = JobStore(tmp_path)
        job = make_job(job_id="twice")
        store.record_submitted(job)
        store.record_queued(job)
        store.record_submitted(job)  # the re-journal from a recovery
        store.record_queued(job)
        job.mark_completed(7.0)
        store.record_completed(job)
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert len(recovered) == 1
        assert recovered.completed[0].finish_seconds == 7.0

    def test_late_pilot_verdict_does_not_demote_a_completed_job(self, tmp_path):
        # The dispatcher drains after the simulated event loop, so the
        # pilot's `executed` event lands after `completed` in the journal;
        # it must enrich the outcome, not demote the job back to pending.
        store = JobStore(tmp_path)
        job = make_job(job_id="late")
        store.record_submitted(job)
        store.record_queued(job)
        job.mark_running(0.0, gpus=2, rows=1, columns=2, cache_hit=False)
        store.record_placed(job, 5.0)
        job.mark_completed(5.0)
        store.record_completed(job)
        job.mark_executed(0.0, 0.3, workers=1)
        job.pilot_cache_hit = False
        job.execution_attempts = 1
        store.record_executed(job)  # after `completed`
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert not recovered.pending
        assert recovered.completed[0].state is JobState.COMPLETED
        assert recovered.completed[0].workers == 1

    def test_late_pilot_failure_overturns_a_completed_job(self, tmp_path):
        # ...but a *terminal* late verdict (the pilot failed after the
        # simulated completion) does replace the outcome: one job, one
        # outcome, and the real execution wins.
        store = JobStore(tmp_path)
        job = make_job(job_id="overturned")
        store.record_submitted(job)
        store.record_queued(job)
        job.mark_completed(5.0)
        store.record_completed(job)
        job.mark_failed("pilot worker crashed (attempt 2)")
        store.record_failed(job)
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert not recovered.completed
        assert recovered.failed[0].failure_reason == (
            "pilot worker crashed (attempt 2)"
        )

    def test_torn_final_line_is_ignored(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job(job_id="ok")
        store.record_submitted(job)
        store.record_queued(job)
        store.close()
        with store.journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "comp')  # killed mid-write

        recovered = JobStore(tmp_path).recover()
        assert [j.job_id for j in recovered.pending] == ["ok"]

    def test_append_after_torn_tail_truncates_not_merges(self, tmp_path):
        # kill -9 mid-write, restart, journal more work, restart again: the
        # recovered store must truncate the torn partial line before its
        # first append — otherwise the new record merges onto the partial
        # line and the second recovery either drops it as the "torn tail"
        # or refuses the whole journal as corrupt.
        store = JobStore(tmp_path)
        job = make_job(job_id="ok")
        store.record_submitted(job)
        store.record_queued(job)
        store.close()
        with store.journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "comp')  # killed mid-write

        second = JobStore(tmp_path)
        assert [j.job_id for j in second.recover().pending] == ["ok"]
        new = make_job(job_id="new")
        second.record_submitted(new)
        second.record_queued(new)
        second.close()

        recovered = JobStore(tmp_path).recover()
        assert {j.job_id for j in recovered.pending} == {"ok", "new"}

    def test_torn_only_line_is_truncated_before_append(self, tmp_path):
        # The torn line is the journal's *only* line: the first append of a
        # fresh store must not fuse with it (pre-fix the merged line was
        # the last line, so replay dropped the new submission entirely).
        store = JobStore(tmp_path)
        store.journal_path.write_text('{"event": "subm', encoding="utf-8")
        job = make_job(job_id="fresh")
        store.record_submitted(job)
        store.record_queued(job)
        store.close()

        recovered = JobStore(tmp_path).recover()
        assert [j.job_id for j in recovered.pending] == ["fresh"]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job(job_id="ok")
        store.record_submitted(job)
        store.close()
        lines = store.journal_path.read_text().splitlines()
        store.journal_path.write_text("not json\n" + "\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal"):
            JobStore(tmp_path).recover()

    def test_unknown_event_kind_is_rejected_on_append(self, tmp_path):
        with pytest.raises(ValueError, match="unknown journal event"):
            JobStore(tmp_path).append("exploded", "job-1")


# --------------------------------------------------------------------------- #
# On-disk filtered-projection cache
# --------------------------------------------------------------------------- #
def disk_key(dataset_id: str, **kwargs) -> CacheKey:
    fields = dict(dataset_id=dataset_id, ramp_filter="ram-lak",
                  nu=8, nv=8, np_=4)
    fields.update(kwargs)
    return CacheKey(**fields)


class TestOnDiskFilteredCache:
    def test_payload_round_trip(self, tmp_path):
        cache = OnDiskFilteredCache(tmp_path, capacity_bytes=1 << 20)
        key = disk_key("ds-1")
        stack = make_filtered_stack(seed=7)
        assert cache.lookup(key) is False
        cache.insert(key, filtered=stack)
        assert cache.contains(key)
        restored = cache.get_filtered(key)
        np.testing.assert_array_equal(restored.data, stack.data)
        np.testing.assert_array_equal(restored.angles, stack.angles)
        assert restored.filtered is True

    def test_second_instance_sees_entries(self, tmp_path):
        first = OnDiskFilteredCache(tmp_path, capacity_bytes=1 << 20)
        key = disk_key("ds-shared")
        first.insert(key, filtered=make_filtered_stack(seed=1))
        # A different instance (as a different process would build) hits.
        second = OnDiskFilteredCache(tmp_path, capacity_bytes=1 << 20)
        assert second.lookup(key) is True
        assert second.get_filtered(key) is not None
        assert second.stats.hits == 2

    def test_lru_eviction_by_byte_budget(self, tmp_path):
        from repro.service.diskcache import _key_tag

        cache = OnDiskFilteredCache(tmp_path, capacity_bytes=250)
        a, b, c = disk_key("a"), disk_key("b"), disk_key("c")
        cache.insert(a, nbytes=100)
        cache.insert(b, nbytes=100)
        # Make the recency order unambiguous (mtime is the LRU clock):
        # a is oldest, b was touched more recently.
        os.utime(cache._meta_path(_key_tag(a)), (1_000_000, 1_000_000))
        os.utime(cache._meta_path(_key_tag(b)), (2_000_000, 2_000_000))
        cache.insert(c, nbytes=100)  # 300 > 250: evicts the oldest (a)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)
        assert cache.used_bytes <= 250
        assert cache.stats.evictions == 1

    def test_oversize_insert_is_rejected(self, tmp_path):
        cache = OnDiskFilteredCache(tmp_path, capacity_bytes=100)
        with pytest.raises(ValueError, match="exceeds the cache capacity"):
            cache.insert(disk_key("big"), nbytes=101)
        assert len(cache) == 0

    def test_size_only_entry_misses_functional_read(self, tmp_path):
        cache = OnDiskFilteredCache(tmp_path, capacity_bytes=1 << 20)
        key = disk_key("sched-only")
        cache.insert(key, nbytes=64)
        assert cache.contains(key)
        assert cache.get_filtered(key) is None
        assert cache.stats.misses == 1

    def test_eviction_survives_missing_payload_file(self, tmp_path):
        cache = OnDiskFilteredCache(tmp_path, capacity_bytes=1 << 20)
        key = disk_key("gone")
        cache.insert(key, filtered=make_filtered_stack())
        # Simulate a concurrent eviction between meta read and payload load.
        cache._payload_path(cache._entries()[0][1]).unlink()
        assert cache.get_filtered(key) is None  # a miss, not an error


# --------------------------------------------------------------------------- #
# Service restart recovery (in-process)
# --------------------------------------------------------------------------- #
class TestServiceRestartRecovery:
    def test_queued_workload_survives_restart_without_loss_or_dupes(
        self, tmp_path
    ):
        state = tmp_path / "state"
        first = ReconstructionService(16, backend="vectorized", state_dir=state)
        for index in range(3):
            job = make_job(job_id=f"job-r{index}", dataset_id="ds-r",
                           arrival_seconds=float(index))
            assert first.submit(job, now=job.arrival_seconds)
        # Killed before any event-loop progress: jobs are queued, not run.
        first.close()

        second = ReconstructionService(16, backend="vectorized", state_dir=state)
        assert second.recovered_jobs == 3
        assert len(second.queue) == 3
        assert sorted(second.jobs) == ["job-r0", "job-r1", "job-r2"]
        second.run_until_idle()
        report = second.report()
        assert report.summary["jobs_completed"] == 3.0
        second.close()

        third = ReconstructionService(16, backend="vectorized", state_dir=state)
        # No duplicates: the journal dedups by job id, keeping outcomes.
        assert third.recovered_jobs == 3
        assert len(third.queue) == 0
        assert third.report().summary["jobs_completed"] == 3.0
        third.close()

    def test_rejections_survive_restart(self, tmp_path):
        state = tmp_path / "state"
        from repro.service import AdmissionPolicy

        first = ReconstructionService(
            16, backend="vectorized", state_dir=state,
            admission=AdmissionPolicy(max_depth=1),
        )
        assert first.submit(make_job(job_id="fits"))
        assert not first.submit(make_job(job_id="overflow"))
        first.close()

        second = ReconstructionService(16, backend="vectorized", state_dir=state)
        assert second.jobs["overflow"].state is JobState.REJECTED
        assert len(second.queue) == 1  # only the admitted job came back
        second.close()

    def test_kill_minus_nine_mid_queue_recovers(self, tmp_path):
        """A SIGKILLed service process leaves a journal a fresh process
        recovers the full queue from."""
        state = tmp_path / "state"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.core.types import problem_from_string
            from repro.service import ReconstructionJob, ReconstructionService

            service = ReconstructionService(
                16, backend="vectorized", state_dir={str(state)!r})
            for index in range(4):
                service.submit(ReconstructionJob(
                    problem=problem_from_string({SMALL!r}),
                    job_id=f"killed-{{index}}", dataset_id="ds-k"))
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=120,
            capture_output=True, text=True,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        service = ReconstructionService(16, backend="vectorized", state_dir=state)
        assert service.recovered_jobs == 4
        assert len(service.queue) == 4
        service.run_until_idle()
        assert service.report().summary["jobs_completed"] == 4.0
        service.close()


# --------------------------------------------------------------------------- #
# Service accounting: overturned completions and concurrent reports
# --------------------------------------------------------------------------- #
class TestServiceAccounting:
    def test_overturned_completion_reconciles_obs_counters(self):
        # A late pilot failure demotes a completed job.  ServiceMetrics
        # moves it completed -> failed; the monotonic obs counter
        # `service.jobs_completed` (completions *observed*) cannot be
        # walked back, so `service.completions_overturned` must record the
        # demotion: observed - overturned == summary()["jobs_completed"].
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        service = ReconstructionService(16, backend="vectorized", obs=registry)
        job = make_job(job_id="late-fail", dataset_id="ds-o")
        assert service.submit(job, now=0.0)
        service.run_until_idle()
        assert job.state is JobState.COMPLETED

        job.mark_failed("pilot worker crashed (attempt 3)")
        service._on_pilot_failed(job)

        snapshot = service.obs_snapshot()
        summary = service.report().summary
        assert snapshot["service.jobs_completed"] == 1.0
        assert snapshot["service.completions_overturned"] == 1.0
        assert snapshot["service.jobs_failed"] == 1.0
        assert summary["jobs_completed"] == 0.0
        assert summary["jobs_failed"] == 1.0
        assert (
            snapshot["service.jobs_completed"]
            - snapshot["service.completions_overturned"]
            == summary["jobs_completed"]
        )

    def test_overturn_counter_untouched_for_never_completed_jobs(self):
        # A job that failed without ever being counted completed (the
        # common path) must not look like an overturned completion.
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        service = ReconstructionService(16, backend="vectorized", obs=registry)
        job = make_job(job_id="plain-fail", dataset_id="ds-p")
        job.mark_failed("pilot timed out after 1.0s (attempt 1)")
        service._on_pilot_failed(job)

        snapshot = service.obs_snapshot()
        assert snapshot["service.jobs_failed"] == 1.0
        assert "service.completions_overturned" not in snapshot

    def test_report_is_consistent_under_concurrent_submissions(self):
        # GET /metrics runs report() on HTTP handler threads while the
        # event loop mutates the metrics lists; report() must snapshot
        # under the service lock, never tearing mid-update.
        import threading

        service = ReconstructionService(16, backend="vectorized")
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                try:
                    report = service.report()
                    # A torn snapshot shows jobs the summary missed (or
                    # vice versa): every report must agree with itself.
                    counted = (
                        report.summary["jobs_completed"]
                        + report.summary["jobs_rejected"]
                        + report.summary["jobs_failed"]
                    )
                    if counted != float(len(report.jobs)):
                        errors.append(
                            f"summary counts {counted} but report carries "
                            f"{len(report.jobs)} job records"
                        )
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

        reader = threading.Thread(target=hammer)
        reader.start()
        try:
            for index in range(20):
                job = make_job(job_id=f"conc-{index}", dataset_id="ds-c",
                               arrival_seconds=float(index))
                service.submit(job, now=job.arrival_seconds)
                service.run_until_idle()
        finally:
            stop.set()
            reader.join(timeout=30)
        assert not errors, errors[:3]
        assert service.report().summary["jobs_completed"] == 20.0


# --------------------------------------------------------------------------- #
# Process dispatcher: pool-rebuild bookkeeping (no real workers)
# --------------------------------------------------------------------------- #
class _FakeExecutor:
    """Records submissions; returned futures stay unresolved."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, payload):
        from concurrent.futures import Future

        self.submitted.append(payload)
        return Future()


class TestPoolRebuildBookkeeping:
    def _entry(self, dispatcher, job_id, future):
        from repro.service.process_dispatch import _Pending

        job = make_job(job_id=job_id, dataset_id="ds-rb")
        return _Pending(
            job=job, payload=dispatcher._payload_for(job, 1), attempt=1,
            submitted=0.0, parent=None, future=future,
        )

    def test_rebuild_keeps_resolved_outcomes_and_resubmits_the_lost(self):
        # A rebuild triggered by one job's timeout/crash must not re-run
        # collateral pilots that already resolved — a recorded result *or*
        # a recorded exception is an outcome; re-executing it duplicates
        # side effects at the same attempt number and bypasses retry
        # accounting.  Only entries the dead pool took with it (never ran,
        # cancelled, or resolved to the pool's own BrokenExecutor) go back.
        from concurrent.futures import BrokenExecutor, Future

        dispatcher = ProcessDispatcher(2, backend="vectorized",
                                       pilot_problem=PILOT)
        fake = _FakeExecutor()
        dispatcher._ensure = lambda: fake
        dispatcher._teardown_pool = lambda: None

        done_ok = Future()
        done_ok.set_result({"cache_hit": None, "filter_seconds": 0.0})
        done_raised = Future()
        done_raised.set_exception(RuntimeError("pilot raised"))
        done_broken = Future()
        done_broken.set_exception(BrokenExecutor("pool died"))
        cancelled = Future()
        cancelled.cancel()
        never_ran = Future()

        entries = {
            "ok": self._entry(dispatcher, "ok", done_ok),
            "raised": self._entry(dispatcher, "raised", done_raised),
            "broken": self._entry(dispatcher, "broken", done_broken),
            "cancelled": self._entry(dispatcher, "cancelled", cancelled),
            "lost": self._entry(dispatcher, "lost", never_ran),
        }
        dispatcher._rebuild_pool(list(entries.values()), width=1)

        assert entries["ok"].future is done_ok
        assert entries["raised"].future is done_raised  # NOT re-run
        assert entries["broken"].future is not done_broken
        assert entries["cancelled"].future is not cancelled
        assert entries["lost"].future is not never_ran
        resubmitted = {payload["job_id"] for payload in fake.submitted}
        assert resubmitted == {"broken", "cancelled", "lost"}

    def test_kept_exception_routes_through_retry_accounting(self):
        # The kept pilot exception must reach _retry_or_fail via _await:
        # attempt 2 is scheduled and the retry counter moves — instead of
        # the pre-fix silent re-execution at attempt 1.
        from concurrent.futures import Future

        dispatcher = ProcessDispatcher(2, backend="vectorized",
                                       pilot_problem=PILOT,
                                       retry_backoff_seconds=0.0)
        fake = _FakeExecutor()
        dispatcher._ensure = lambda: fake
        dispatcher._teardown_pool = lambda: None

        done_raised = Future()
        done_raised.set_exception(RuntimeError("pilot raised"))
        entry = self._entry(dispatcher, "raised", done_raised)
        dispatcher._rebuild_pool([entry], width=1)
        assert fake.submitted == []  # nothing re-ran during the rebuild

        queue, failed = [], []
        dispatcher._await(entry, queue, failed)
        assert failed == []
        assert dispatcher.retries == 1
        assert [pending.attempt for pending in queue] == [2]
        assert [payload["attempt"] for payload in fake.submitted] == [2]


# --------------------------------------------------------------------------- #
# Process dispatcher: real workers, faults, shared cache
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestProcessDispatcher:
    def test_cross_process_cache_hit_across_service_restarts(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = ReconstructionService(
            16, backend="vectorized", workers=2, dispatcher="process",
            pilot_problem=PILOT, cache_dir=cache_dir,
        )
        j1 = make_job(job_id="warm", dataset_id="ds-X")
        first.submit(j1)
        first.run_until_idle()
        assert j1.pilot_cache_hit is False  # first worker filtered + wrote
        first.close()

        # A new service = new worker processes; same cache directory.
        second = ReconstructionService(
            16, backend="vectorized", workers=2, dispatcher="process",
            pilot_problem=PILOT, cache_dir=cache_dir,
        )
        j2 = make_job(job_id="hit", dataset_id="ds-X")
        j3 = make_job(job_id="other", dataset_id="ds-Y")
        second.submit(j2)
        second.submit(j3)
        second.run_until_idle()
        assert j2.pilot_cache_hit is True  # written by another OS process
        assert j3.pilot_cache_hit is False  # different dataset never aliases
        second.close()

    def test_injected_crash_fails_loudly_and_degrades_the_pool(self, tmp_path):
        from repro.obs import MetricsRegistry

        obs = MetricsRegistry()
        service = ReconstructionService(
            16, backend="vectorized", workers=2, dispatcher="process",
            pilot_problem=PILOT, dispatch_timeout_seconds=60.0,
            dispatch_max_retries=1, obs=obs,
            fault_injection={"doomed": {"crash_attempts": [1, 2]}},
        )
        doomed = make_job(job_id="doomed", dataset_id="ds-c")
        fine = make_job(job_id="fine", dataset_id="ds-c2")
        service.submit(doomed)
        service.submit(fine)
        service.run_until_idle()
        assert doomed.state is JobState.FAILED
        assert "crashed" in doomed.failure_reason
        assert doomed.execution_attempts == 2
        assert fine.state is JobState.COMPLETED
        dispatcher = service.dispatcher
        assert dispatcher.crashes == 2
        assert dispatcher.effective_workers == 1  # degraded, still alive
        summary = service.report().summary
        assert summary["jobs_failed"] == 1.0
        assert summary["dispatch_crashes"] == 2.0
        snapshot = service.obs_snapshot()
        assert snapshot["dispatch.crashes"] == 2.0
        assert snapshot["service.jobs_failed"] == 1.0
        service.close()

    def test_timeout_is_killed_and_retried_to_success(self, tmp_path):
        service = ReconstructionService(
            16, backend="vectorized", workers=1, dispatcher="process",
            pilot_problem=PILOT, dispatch_timeout_seconds=2.0,
            dispatch_max_retries=2,
            fault_injection={"stuck": {"sleep_seconds": 30.0,
                                       "sleep_attempts": [1]}},
        )
        stuck = make_job(job_id="stuck", dataset_id="ds-t")
        service.submit(stuck)
        service.run_until_idle()
        assert stuck.state is JobState.COMPLETED  # retry succeeded
        assert stuck.execution_attempts == 2
        assert service.dispatcher.timeouts == 1
        assert service.dispatcher.retries == 1
        service.close()

    def test_exhausted_timeouts_fail_the_job_not_the_service(self, tmp_path):
        service = ReconstructionService(
            16, backend="vectorized", workers=1, dispatcher="process",
            pilot_problem=PILOT, dispatch_timeout_seconds=1.0,
            dispatch_max_retries=0,
            fault_injection={"wedged": {"sleep_seconds": 30.0}},
        )
        wedged = make_job(job_id="wedged", dataset_id="ds-w")
        after = make_job(job_id="after", dataset_id="ds-a")
        service.submit(wedged)
        service.submit(after)
        service.run_until_idle()  # must return, not hang
        assert wedged.state is JobState.FAILED
        assert "timed out" in wedged.failure_reason
        assert after.state is JobState.COMPLETED
        service.close()

    def test_pilot_exception_is_retried(self, tmp_path):
        dispatcher = ProcessDispatcher(
            1, backend="vectorized", pilot_problem=PILOT,
            fault_injection={"flaky": {"raise_attempts": [1]}},
        )
        from repro.service import AllocationPlan, Placement

        job = make_job(job_id="flaky", dataset_id="ds-f")
        plan = AllocationPlan(gpus=1, rows=1, columns=1,
                              runtime_seconds=1.0, cache_hit=False)
        dispatcher.dispatch([Placement(job=job, plan=plan, start_seconds=0.0)])
        failures = dispatcher.drain()
        assert failures == []
        assert job.execution_attempts == 2
        assert dispatcher.retries == 1
        dispatcher.close()


# --------------------------------------------------------------------------- #
# HTTP front door
# --------------------------------------------------------------------------- #
def _post(url: str, body: bytes) -> dict:
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


class TestHTTPFrontDoor:
    @pytest.fixture()
    def front(self):
        service = ReconstructionService(16, backend="vectorized")
        server = ServiceHTTPServer(service, auto_advance=True)
        server.start()
        yield server
        server.stop()
        service.close()

    def test_submit_plan_and_poll_job(self, front):
        base = f"http://127.0.0.1:{front.port}"
        plan = plan_for_problem(
            problem_from_string(SMALL), target="service", backend="vectorized"
        )
        record = _post(base + "/plans?dataset=ds-http",
                       plan.to_json().encode("utf-8"))
        assert record["state"] == "completed"  # auto-advance drained it
        assert record["dataset"] == "ds-http"
        fetched = _get(base + f"/jobs/{record['job_id']}")
        assert fetched["state"] == "completed"
        assert fetched["latency_s"] is not None
        everything = _get(base + "/jobs")
        assert len(everything["jobs"]) == 1
        metrics = _get(base + "/metrics")
        assert metrics["summary"]["jobs_completed"] == 1.0

    def test_scenario_mix_load(self, front):
        base = f"http://127.0.0.1:{front.port}"
        problem = problem_from_string(SMALL)
        mix = ["full_scan", "short_scan", "sparse_view", "full_scan"]
        for index, scenario in enumerate(mix):
            plan = plan_for_problem(
                problem, target="service", backend="vectorized",
                scenario=scenario, tenant=f"tenant-{index % 2}",
            )
            record = _post(base + f"/plans?dataset=ds-{scenario}",
                           plan.to_json().encode("utf-8"))
            assert record["state"] == "completed"
        summary = _get(base + "/metrics")["summary"]
        assert summary["jobs_completed"] == float(len(mix))
        assert summary["scenario[full_scan]_jobs"] == 2.0
        assert summary["scenario[short_scan]_jobs"] == 1.0
        # Per-tenant tails surfaced for the mix.
        assert summary["tenant[tenant-0]_jobs"] == 2.0
        assert "tenant[tenant-1]_p99_s" in summary
        # Same dataset+filter identity resubmitted: cache hit on placement.
        assert summary["cache_hits"] >= 1.0

    def test_malformed_plan_is_a_400(self, front):
        base = f"http://127.0.0.1:{front.port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/plans", b'{"not_a_field": 1}')
        assert excinfo.value.code == 400
        assert "unknown plan field" in json.loads(excinfo.value.read())["error"]

    def test_unknown_job_is_a_404(self, front):
        base = f"http://127.0.0.1:{front.port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/jobs/never-submitted")
        assert excinfo.value.code == 404

    def test_explicit_advance_endpoint(self):
        service = ReconstructionService(16, backend="vectorized")
        server = ServiceHTTPServer(service, auto_advance=False)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            plan = plan_for_problem(
                problem_from_string(SMALL), target="service",
                backend="vectorized",
            )
            record = _post(base + "/plans", plan.to_json().encode("utf-8"))
            assert record["state"] == "queued"  # nothing advanced yet
            _post(base + "/advance", b"")
            fetched = _get(base + f"/jobs/{record['job_id']}")
            assert fetched["state"] == "completed"
        finally:
            server.stop()
            service.close()


def _raw_request(port: int, payload: bytes) -> str:
    """Send raw bytes and return the decoded response (error-path probes)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        sock.settimeout(10)
        chunks = []
        while True:
            data = sock.recv(4096)
            if not data:
                break
            chunks.append(data)
        return b"".join(chunks).decode("utf-8", "replace")


class TestHTTPErrorPaths:
    """Regression tests for front-door crashes: each of these paths used to
    kill the handler thread and reset the connection instead of answering."""

    @pytest.fixture()
    def observed(self):
        service = ReconstructionService(
            16, backend="vectorized", obs=MetricsRegistry()
        )
        server = ServiceHTTPServer(service, auto_advance=True)
        server.start()
        yield server
        server.stop()
        service.close()

    def test_malformed_content_length_is_a_400(self, observed):
        response = _raw_request(
            observed.port,
            b"POST /plans HTTP/1.1\r\nHost: t\r\nContent-Length: abc\r\n\r\n",
        )
        assert response.startswith("HTTP/1.0 400") or response.startswith(
            "HTTP/1.1 400"
        )
        assert "malformed Content-Length" in response

    def test_negative_content_length_is_a_400(self, observed):
        response = _raw_request(
            observed.port,
            b"POST /plans HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n\r\n",
        )
        assert " 400 " in response.splitlines()[0]
        assert "negative Content-Length" in response

    def test_oversized_body_is_a_413_without_reading_it(self, observed):
        huge = observed.max_body_bytes + 1
        response = _raw_request(
            observed.port,
            f"POST /plans HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {huge}\r\n\r\n".encode(),
        )
        assert " 413 " in response.splitlines()[0]
        assert "exceeds" in response

    def test_internal_error_is_a_json_500_and_counted(self, observed):
        service = observed.service

        def boom(*args, **kwargs):
            raise RuntimeError("dispatcher wedged")

        service.submit_plan = boom
        plan = plan_for_problem(
            problem_from_string(SMALL), target="service", backend="vectorized"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"http://127.0.0.1:{observed.port}/plans",
                  plan.to_json().encode("utf-8"))
        assert excinfo.value.code == 500
        assert "dispatcher wedged" in json.loads(excinfo.value.read())["error"]
        assert service.obs_snapshot()["service.http.errors"] == 1.0
        # The handler thread survived: the next request still answers.
        assert _get(f"http://127.0.0.1:{observed.port}/jobs") == {"jobs": []}

    def test_client_disconnect_mid_response_is_swallowed_and_counted(self):
        import types

        from repro.service.http import _Handler

        class _BrokenPipeFile:
            def write(self, data):
                raise BrokenPipeError(32, "Broken pipe")

        obs = MetricsRegistry()
        handler = object.__new__(_Handler)
        handler.request_version = "HTTP/1.1"
        handler.requestline = "POST /plans HTTP/1.1"
        handler.wfile = _BrokenPipeFile()
        handler.server = types.SimpleNamespace(
            front=types.SimpleNamespace(
                service=types.SimpleNamespace(obs=obs)
            )
        )
        handler.close_connection = False
        handler._send(200, {"ok": True})  # must not raise
        assert handler.close_connection
        assert obs.snapshot()["service.http.client_disconnects"] == 1.0

    def test_quota_rejection_is_a_429_with_retry_after(self):
        service = ReconstructionService(
            16, backend="vectorized",
            admission=AdmissionPolicy(max_queue_depth_per_tenant=1),
        )
        server = ServiceHTTPServer(service, auto_advance=False)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            plan = plan_for_problem(
                problem_from_string(SMALL), target="service",
                backend="vectorized",
            )
            first = _post(base + "/plans?dataset=ds-0",
                          plan.to_json().encode("utf-8"))
            assert first["state"] == "queued"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base + "/plans?dataset=ds-1",
                      plan.to_json().encode("utf-8"))
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers["Retry-After"]
            assert int(retry_after) >= 1
            payload = json.loads(excinfo.value.read())
            assert payload["error"].startswith("tenant quota")
            assert payload["retry_after_seconds"] >= 1.0
            assert payload["job"]["state"] == "rejected"
            assert payload["job"]["retry_after_s"] == pytest.approx(
                payload["retry_after_seconds"]
            )
        finally:
            server.stop()
            service.close()

    def test_infeasible_plan_is_a_400_not_a_429(self):
        # One V100 cannot hold a 2048^3 sub-volume: never feasible, so the
        # front door must answer 400 (fix the request), not 429 (retry).
        service = ReconstructionService(1, backend="vectorized")
        server = ServiceHTTPServer(service, auto_advance=False)
        server.start()
        try:
            plan = plan_for_problem(
                problem_from_string("2048x2048x4096->2048x2048x2048"),
                target="service", backend="vectorized",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"http://127.0.0.1:{server.port}/plans",
                      plan.to_json().encode("utf-8"))
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read())
            assert "infeasible" in payload["error"]
            assert "Retry-After" not in excinfo.value.headers
        finally:
            server.stop()
            service.close()

    def test_connection_overflow_is_a_503(self):
        service = ReconstructionService(
            16, backend="vectorized", obs=MetricsRegistry()
        )
        server = ServiceHTTPServer(
            service, auto_advance=False, handler_threads=1, max_connections=1
        )
        server.start()
        holder = None
        try:
            # Occupy the only connection slot with a stalled request (the
            # handler blocks reading a body that never arrives).  Getting
            # bytes back means this connection itself lost a race and was
            # 503'd — close it and take a fresh one until one sticks.
            for _ in range(50):
                candidate = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10
                )
                candidate.sendall(
                    b"POST /plans HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 8\r\n\r\n"
                )
                candidate.settimeout(0.3)
                try:
                    candidate.recv(1)
                except socket.timeout:
                    holder = candidate  # silence: a handler is blocked on it
                    break
                candidate.close()
            assert holder is not None, "could not occupy the handler slot"
            # The slot stays held until the stalled read times out, so the
            # next connection must be shed at the door.
            overflow = _raw_request(
                server.port,
                b"GET /jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )
            assert " 503 " in overflow.splitlines()[0]
            assert "connection limit" in overflow
            snapshot = service.obs_snapshot()
            assert snapshot["service.http.rejected_connections"] >= 1.0
        finally:
            if holder is not None:
                holder.close()
            server.stop()
            service.close()


@pytest.mark.slow
class TestHTTPKillAndRecover:
    def test_http_service_killed_mid_queue_recovers_over_http(self, tmp_path):
        """End-to-end: start `repro serve --http`, submit over HTTP, SIGKILL
        the server mid-queue, restart on the same state dir, and observe the
        queued jobs complete — with the cache warm across the restart."""
        state = tmp_path / "state"
        cache = tmp_path / "cache"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--http", "0", "--backend", "vectorized",
            "--state-dir", str(state), "--cache-dir", str(cache),
        ]

        def start_server():
            proc = subprocess.Popen(
                args, env=env, stdout=subprocess.PIPE, text=True
            )
            line = proc.stdout.readline()
            assert "serving on http://" in line, line
            return proc, line.strip().rsplit(":", 1)[1]

        proc, port = start_server()
        try:
            plan = plan_for_problem(
                problem_from_string(SMALL), target="service",
                backend="vectorized",
            )
            submitted = []
            for index in range(3):
                record = _post(
                    f"http://127.0.0.1:{port}/plans?dataset=ds-kill",
                    plan.to_json().encode("utf-8"),
                )
                submitted.append(record["job_id"])
        finally:
            proc.kill()  # SIGKILL: no atexit, no journal flush beyond appends
            proc.wait(timeout=30)

        proc, port = start_server()
        try:
            base = f"http://127.0.0.1:{port}"
            jobs = _get(base + "/jobs")["jobs"]
            recovered_ids = {job["job_id"] for job in jobs}
            assert set(submitted) <= recovered_ids
            assert len(jobs) == len(submitted)  # no duplicates
            _post(base + "/advance", b"")
            summary = _get(base + "/metrics")["summary"]
            assert summary["jobs_completed"] == float(len(submitted))
        finally:
            proc.kill()
            proc.wait(timeout=30)
