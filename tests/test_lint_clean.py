"""The self-clean gate: ``src/repro`` must lint clean, forever.

Any new violation of the project invariants — an unlocked guarded-state
access, a closure shipped to a process pool, hidden RNG state in a
numeric path, a dtype-less constructor on the float32 hot path, a leaky
CLI/HTTP error boundary — fails this tier-1 test loudly.  This is also
the regression test for the dtype findings fixed in this change
(``cosine_weight_table`` and the proposed kernel's index table): if
either dtype-less ``np.arange`` reappears, this test fails.

Accepted debt goes through ``lint-baseline.json`` (checked in, currently
empty) or an inline ``# repro-lint: disable=<rule> -- <reason>`` — both
auditable in review.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.cli import main as cli_main

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "lint-baseline.json"


def test_src_tree_has_zero_unsuppressed_findings():
    result = lint_paths([SRC], baseline_file=BASELINE)
    assert result.findings == [], "\n".join(
        finding.render() for finding in result.findings
    )
    assert result.files_checked > 80  # the whole package was actually walked


def test_checked_in_baseline_is_empty():
    # The tree is fully clean today; growing the baseline is a conscious,
    # reviewed decision (this assertion is the review trigger).
    import json

    assert json.loads(BASELINE.read_text()) == []


def test_repro_lint_cli_exits_zero_on_the_repo():
    assert cli_main(["lint", str(SRC), "--baseline", str(BASELINE)]) == 0
