"""API-surface snapshot: the public exports of ``repro`` and ``repro.api``.

The checked-in lists below are the contract: anything importable via
``from repro import *`` (or ``from repro.api import *``) that is not in
its list — or anything in a list that stops existing — fails tier-1.  A
deliberate API change must edit this file in the same commit, which is
exactly the review speed-bump the snapshot exists to create.
"""

from __future__ import annotations

import repro
import repro.api

#: Everything `repro` exports: the sub-packages plus the plan/session
#: front door re-exported at top level.
REPRO_EXPORTS = [
    "ReconstructionPlan",
    "RunResult",
    "Session",
    "__version__",
    "analysis",
    "api",
    "backends",
    "bench",
    "core",
    "gpusim",
    "mpi",
    "obs",
    "pfs",
    "pipeline",
    "scenarios",
    "service",
    "streaming",
]

#: The declarative plan layer's complete public surface.
REPRO_API_EXPORTS = [
    "PLAN_VERSION",
    "TARGETS",
    "ReconstructionPlan",
    "RunResult",
    "Session",
    "acquisition_token",
    "filter_cache_identity",
    "plan_for_problem",
    "run_plan",
]


def _assert_surface(module, expected):
    exported = sorted(module.__all__)
    assert exported == sorted(expected), (
        f"{module.__name__}.__all__ changed; if intentional, update the "
        f"snapshot in tests/test_api_surface.py.\n"
        f"  added:   {sorted(set(exported) - set(expected))}\n"
        f"  removed: {sorted(set(expected) - set(exported))}"
    )
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module.__name__} exports missing attributes: {missing}"


def test_repro_surface_matches_snapshot():
    _assert_surface(repro, REPRO_EXPORTS)


def test_repro_api_surface_matches_snapshot():
    _assert_surface(repro.api, REPRO_API_EXPORTS)


def test_plan_field_schema_is_pinned():
    """The plan's field set *is* its serialized schema — pin it too.

    Adding a field changes every plan's canonical key (the hash covers the
    full dict), so it must be a conscious, versioned decision.
    """
    import dataclasses

    fields = sorted(
        f.name for f in dataclasses.fields(repro.api.ReconstructionPlan)
    )
    assert fields == [
        "algorithm",
        "backend",
        "chunk_size",
        "cluster_gpus",
        "columns",
        "dtype",
        "geometry",
        "max_inflight",
        "memory_budget_bytes",
        "priority",
        "ramp_filter",
        "rows",
        "scenario",
        "slo_seconds",
        "streaming",
        "target",
        "tenant",
        "tenant_weight",
        "workers",
    ]


def test_geometry_serialization_covers_every_field():
    """A new CBCTGeometry field must be added to the plan schema (and thus
    to key()/acquisition_token) explicitly — never silently dropped."""
    import dataclasses

    from repro.api import plan as plan_module
    from repro.core.geometry import CBCTGeometry

    serialized = set(plan_module._GEOMETRY_INT_FIELDS) | set(
        plan_module._GEOMETRY_FLOAT_FIELDS
    )
    actual = {f.name for f in dataclasses.fields(CBCTGeometry)}
    assert serialized == actual, (
        "plan geometry serialization is out of sync with CBCTGeometry: "
        f"missing {sorted(actual - serialized)}, "
        f"stale {sorted(serialized - actual)}"
    )
