"""Unit tests for repro.core.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    gups,
    interior_mask,
    mean_absolute_error,
    normalized_cross_correlation,
    psnr,
    rmse,
)
from repro.core.types import ReconstructionProblem


class TestGups:
    def test_matches_definition(self):
        p = ReconstructionProblem(nu=8, nv=8, np_=16, nx=32, ny=32, nz=32)
        assert gups(p, 1.0) == pytest.approx(32**3 * 16 / 2**30)

    def test_paper_scale_sanity(self):
        # 2048^2x4096 -> 4096^3 solved in 30 s is ~8,738 GUPS; the Figure 6
        # end point (22,599 GUPS at 2,048 GPUs) corresponds to ~11.6 s.
        p = ReconstructionProblem(nu=2048, nv=2048, np_=4096, nx=4096, ny=4096, nz=4096)
        assert gups(p, 30.0) == pytest.approx(8738, rel=0.01)
        assert p.gups(11.6) == pytest.approx(22599, rel=0.03)


class TestErrorMetrics:
    def test_rmse_zero_for_identical(self, rng):
        a = rng.random((5, 5, 5))
        assert rmse(a, a) == 0.0

    def test_rmse_known_value(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == pytest.approx(1.0)

    def test_rmse_masked(self):
        a = np.zeros(4)
        b = np.array([0.0, 0.0, 3.0, 3.0])
        mask = np.array([True, True, False, False])
        assert rmse(a, b, mask) == 0.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_rmse_empty_mask(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(3), np.zeros(3, dtype=bool))

    def test_mae(self):
        assert mean_absolute_error(np.zeros(2), np.array([1.0, -3.0])) == pytest.approx(2.0)

    def test_psnr_increases_with_fidelity(self, rng):
        ref = rng.random((8, 8))
        noisy = ref + 0.1 * rng.standard_normal(ref.shape)
        cleaner = ref + 0.01 * rng.standard_normal(ref.shape)
        assert psnr(cleaner, ref) > psnr(noisy, ref)

    def test_psnr_infinite_for_identical(self, rng):
        a = rng.random((4, 4))
        assert psnr(a, a) == float("inf")

    def test_psnr_rejects_flat_reference(self):
        with pytest.raises(ValueError):
            psnr(np.ones(4), np.zeros(4))

    def test_ncc_perfect_and_inverted(self, rng):
        a = rng.random(100)
        assert normalized_cross_correlation(a, a) == pytest.approx(1.0)
        assert normalized_cross_correlation(a, -a) == pytest.approx(-1.0)

    def test_ncc_invariant_to_scale_and_offset(self, rng):
        a = rng.random(100)
        b = 3.0 * a + 7.0
        assert normalized_cross_correlation(a, b) == pytest.approx(1.0)

    def test_ncc_zero_for_constant(self, rng):
        assert normalized_cross_correlation(np.ones(10), rng.random(10)) == 0.0


class TestInteriorMask:
    def test_masks_center_not_corners(self):
        mask = interior_mask((16, 16, 16), fraction=0.8)
        assert mask[8, 8, 8]
        assert not mask[0, 0, 0]

    def test_fraction_controls_size(self):
        small = interior_mask((16, 16, 16), 0.4).sum()
        large = interior_mask((16, 16, 16), 0.9).sum()
        assert small < large

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            interior_mask((4, 4, 4), 0.0)
