"""Unit tests for repro.core.geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import (
    CBCTGeometry,
    default_geometry_for_problem,
    make_projection_matrices,
)


@pytest.fixture()
def geometry() -> CBCTGeometry:
    return CBCTGeometry(
        nu=64, nv=64, np_=36,
        du=2.0, dv=2.0,
        sad=100.0, sdd=150.0,
        nx=32, ny=32, nz=32,
        dx=1.0, dy=1.0, dz=1.0,
    )


class TestCBCTGeometry:
    def test_theta(self, geometry):
        assert geometry.theta == pytest.approx(2 * np.pi / 36)

    def test_magnification(self, geometry):
        assert geometry.magnification == pytest.approx(1.5)

    def test_angles_span_full_rotation(self, geometry):
        angles = geometry.angles
        assert len(angles) == 36
        assert angles[0] == 0.0
        assert angles[-1] == pytest.approx(2 * np.pi - geometry.theta)

    def test_rejects_sdd_smaller_than_sad(self):
        with pytest.raises(ValueError):
            CBCTGeometry(
                nu=8, nv=8, np_=4, du=1, dv=1, sad=100, sdd=50,
                nx=8, ny=8, nz=8, dx=1, dy=1, dz=1,
            )

    @pytest.mark.parametrize("field,value", [("nu", 0), ("du", -1.0), ("np_", 0)])
    def test_rejects_invalid_parameters(self, field, value):
        kwargs = dict(
            nu=8, nv=8, np_=4, du=1.0, dv=1.0, sad=100.0, sdd=150.0,
            nx=8, ny=8, nz=8, dx=1.0, dy=1.0, dz=1.0,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            CBCTGeometry(**kwargs)

    def test_with_volume_and_detector(self, geometry):
        g2 = geometry.with_volume(16, 16, 8).with_detector(32, 16)
        assert (g2.nx, g2.ny, g2.nz) == (16, 16, 8)
        assert (g2.nu, g2.nv) == (32, 16)
        assert g2.sad == geometry.sad

    def test_fov_radius_positive_and_bounded(self, geometry):
        r = geometry.fov_radius()
        assert 0 < r < geometry.sad


class TestProjectionMatrix:
    def test_center_voxel_projects_to_detector_center(self, geometry):
        pm = geometry.projection_matrix(0.7)
        cx, cy, cz = (geometry.nx - 1) / 2, (geometry.ny - 1) / 2, (geometry.nz - 1) / 2
        u, v, z = pm.project(cx, cy, cz)
        assert u == pytest.approx((geometry.nu - 1) / 2)
        assert v == pytest.approx((geometry.nv - 1) / 2)
        assert z == pytest.approx(geometry.sad)

    def test_equation3_closed_form_matches_matrix(self, geometry):
        beta = 1.234
        pm = geometry.projection_matrix(beta)
        i, j, k = 5.0, 20.0, 13.0
        _, _, z = pm.project(i, j, k)
        assert z == pytest.approx(geometry.perspective_divisor(beta, i, j))

    def test_divisor_independent_of_k(self, geometry):
        pm = geometry.projection_matrix(0.3)
        _, _, z0 = pm.project(3, 7, 0)
        _, _, z1 = pm.project(3, 7, geometry.nz - 1)
        assert z0 == pytest.approx(z1)

    def test_matrix_shape_enforced(self, geometry):
        from repro.core.geometry import ProjectionMatrix

        with pytest.raises(ValueError):
            ProjectionMatrix(matrix=np.eye(4), beta=0.0, geometry=geometry)

    def test_camera_center_projects_all_rays_through_it(self, geometry):
        pm = geometry.projection_matrix(0.9)
        center = pm.camera_center
        # The camera centre is the null space of P: P @ [C, 1] == 0.
        residual = pm.matrix @ np.append(center, 1.0)
        assert np.allclose(residual, 0.0, atol=1e-9)

    def test_ray_direction_consistent_with_projection(self, geometry):
        pm = geometry.projection_matrix(2.1)
        center = pm.camera_center
        direction = pm.ray_direction(10.0, 20.0)
        point = center + 0.7 * direction
        u, v, _ = pm.project(point[0], point[1], point[2])
        assert u == pytest.approx(10.0, abs=1e-8)
        assert v == pytest.approx(20.0, abs=1e-8)

    def test_project_homogeneous_matches_project(self, geometry):
        pm = geometry.projection_matrix(0.4)
        pts = np.array([[1.0, 2.0, 3.0, 1.0], [4.0, 5.0, 6.0, 1.0]])
        xyz = pm.project_homogeneous(pts)
        u, v, z = pm.project(pts[:, 0], pts[:, 1], pts[:, 2])
        np.testing.assert_allclose(xyz[:, 0] / xyz[:, 2], u)
        np.testing.assert_allclose(xyz[:, 2], z)

    def test_project_homogeneous_validates_shape(self, geometry):
        pm = geometry.projection_matrix(0.4)
        with pytest.raises(ValueError):
            pm.project_homogeneous(np.zeros((3, 3)))

    def test_distance_weight_is_d_over_z_squared(self, geometry):
        pm = geometry.projection_matrix(0.0)
        z = np.array([geometry.sad, 2 * geometry.sad])
        np.testing.assert_allclose(pm.distance_weight(z), [1.0, 0.25])

    def test_make_projection_matrices_stacks_all(self, geometry):
        mats = make_projection_matrices(geometry)
        assert mats.shape == (geometry.np_, 3, 4)
        np.testing.assert_allclose(
            mats[3], geometry.projection_matrix(geometry.angles[3]).matrix
        )


class TestDefaultGeometry:
    def test_matches_requested_sizes(self):
        g = default_geometry_for_problem(nu=96, nv=80, np_=50, nx=64, ny=64, nz=32)
        assert (g.nu, g.nv, g.np_) == (96, 80, 50)
        assert (g.nx, g.ny, g.nz) == (64, 64, 32)

    def test_volume_projects_inside_detector(self):
        g = default_geometry_for_problem(nu=64, nv=64, np_=16, nx=32, ny=32, nz=32)
        # All eight volume corners must project inside the detector at all angles.
        corners = [
            (i, j, k)
            for i in (0, g.nx - 1)
            for j in (0, g.ny - 1)
            for k in (0, g.nz - 1)
        ]
        for beta in g.angles:
            pm = g.projection_matrix(beta)
            for corner in corners:
                u, v, z = pm.project(*corner)
                assert -1.0 <= u <= g.nu
                assert -1.0 <= v <= g.nv
                assert z > 0
