"""Unit and property tests for repro.core.interpolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpolation import (
    bilinear_interpolate,
    bilinear_interpolate_numpy,
    interp2,
    trilinear_interpolate,
    trilinear_interpolate_numpy,
)


class TestInterp2Scalar:
    def test_exact_on_grid_points(self, rng):
        img = rng.random((6, 7)).astype(np.float32)
        assert interp2(img, 3, 2) == pytest.approx(float(img[2, 3]))

    def test_midpoint_average(self):
        img = np.array([[0.0, 2.0], [4.0, 6.0]], dtype=np.float32)
        assert interp2(img, 0.5, 0.5) == pytest.approx(3.0)

    def test_outside_is_zero(self):
        img = np.ones((4, 4), dtype=np.float32)
        assert interp2(img, -2.0, 1.0) == 0.0
        assert interp2(img, 1.0, 10.0) == 0.0

    def test_border_blends_to_zero(self):
        img = np.ones((4, 4), dtype=np.float32)
        # Half a pixel beyond the last column blends with the zero padding.
        assert interp2(img, 3.5, 1.0) == pytest.approx(0.5)


class TestBilinearVectorized:
    def test_matches_scalar_reference(self, rng):
        img = rng.random((12, 17)).astype(np.float32)
        u = rng.uniform(-2, 19, 200)
        v = rng.uniform(-2, 14, 200)
        fast = bilinear_interpolate(img, u, v)
        ref = np.array([interp2(img, float(a), float(b)) for a, b in zip(u, v)])
        np.testing.assert_allclose(fast, ref, atol=1e-5)

    def test_scipy_and_numpy_paths_agree(self, rng):
        img = rng.random((9, 11)).astype(np.float32)
        u = rng.uniform(-1, 12, 300)
        v = rng.uniform(-1, 10, 300)
        np.testing.assert_allclose(
            bilinear_interpolate(img, u, v),
            bilinear_interpolate_numpy(img, u, v),
            atol=1e-5,
        )

    def test_broadcasting(self, rng):
        img = rng.random((8, 8)).astype(np.float32)
        u = np.linspace(0, 7, 5)[:, None]
        v = np.linspace(0, 7, 3)[None, :]
        out = bilinear_interpolate(img, u, v)
        assert out.shape == (5, 3)

    def test_rejects_non_2d_image(self):
        with pytest.raises(ValueError):
            bilinear_interpolate(np.zeros((2, 2, 2)), 0.0, 0.0)

    @given(
        u=st.floats(-5, 25, allow_nan=False),
        v=st.floats(-5, 20, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar(self, u, v):
        rng = np.random.default_rng(7)
        img = rng.random((16, 20)).astype(np.float32)
        assert bilinear_interpolate(img, u, v) == pytest.approx(
            interp2(img, u, v), abs=1e-5
        )

    def test_result_bounded_by_image_range(self, rng):
        img = rng.random((10, 10)).astype(np.float32)
        u = rng.uniform(0, 9, 500)
        v = rng.uniform(0, 9, 500)
        out = bilinear_interpolate(img, u, v)
        assert np.all(out <= img.max() + 1e-6)
        assert np.all(out >= 0.0)


class TestTrilinear:
    def test_exact_on_grid_points(self, rng):
        vol = rng.random((5, 6, 7)).astype(np.float32)
        assert trilinear_interpolate(vol, 3, 2, 1) == pytest.approx(float(vol[1, 2, 3]))

    def test_scipy_and_numpy_paths_agree(self, rng):
        vol = rng.random((6, 7, 8)).astype(np.float32)
        x = rng.uniform(-1, 9, 200)
        y = rng.uniform(-1, 8, 200)
        z = rng.uniform(-1, 7, 200)
        np.testing.assert_allclose(
            trilinear_interpolate(vol, x, y, z),
            trilinear_interpolate_numpy(vol, x, y, z),
            atol=1e-5,
        )

    def test_outside_is_zero(self):
        vol = np.ones((4, 4, 4), dtype=np.float32)
        assert trilinear_interpolate(vol, -2.0, 1.0, 1.0) == 0.0

    def test_linear_function_reproduced_exactly(self):
        # Trilinear interpolation is exact for (tri)linear fields.
        z, y, x = np.meshgrid(np.arange(5), np.arange(6), np.arange(7), indexing="ij")
        vol = (2.0 * x + 3.0 * y - z).astype(np.float64)
        xs = np.array([1.25, 3.5])
        ys = np.array([2.75, 0.5])
        zs = np.array([1.5, 2.25])
        expected = 2.0 * xs + 3.0 * ys - zs
        np.testing.assert_allclose(trilinear_interpolate(vol, xs, ys, zs), expected, rtol=1e-6)

    def test_rejects_non_3d_volume(self):
        with pytest.raises(ValueError):
            trilinear_interpolate(np.zeros((2, 2)), 0, 0, 0)
