"""Regression tests for the genuine lock-discipline findings.

Each test here failed before its fix:

* ``ReconstructionService.running_jobs``, ``reset()``, ``_recover()`` and
  the event loop's initial dispatch read guarded state
  (``_running`` / ``_finish_heap`` / ``clock_seconds``) without the
  service lock — ``LockCheckedService`` turns those attributes into
  properties that assert ``self._lock._is_owned()`` on every *read*, so
  any unlocked access anywhere in the service trips immediately.
* ``POST /advance`` in the HTTP front door read ``service.clock_seconds``
  unlocked on the handler thread; with ``LockCheckedService`` the
  pre-fix handler raised ``AssertionError`` (surfacing as a 500 through
  the guard boundary) while the fixed handler answers 200.
* ``WorkerPool.started`` and ``ParallelBackend.pool_started`` read their
  executor/pool references without the owning lock — ``FlagLock``
  counts acquisitions and proves each property now takes it.

The two dtype findings (``cosine_weight_table``'s and the proposed
kernel's dtype-less ``np.arange``) change no numerics — their regression
test is the lint self-clean gate in ``test_lint_clean.py``, which fails
whenever either construct reappears.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.backends.parallel import ParallelBackend, WorkerPool
from repro.core.types import problem_from_string
from repro.service import (
    ReconstructionJob,
    ReconstructionService,
    ServiceHTTPServer,
)

SMALL = "512x512x1024->256x256x256"


def make_job(job_id: str, **kwargs) -> ReconstructionJob:
    return ReconstructionJob(
        problem=problem_from_string(SMALL), job_id=job_id, **kwargs
    )


def _locked_read_property(name: str):
    """A data descriptor asserting the service lock is held on every read.

    Writes stay unchecked: ``__init__`` assigns before the object is
    shared.  Reads are where torn state escapes to other threads.
    """

    def getter(self):
        assert self._lock._is_owned(), (
            f"{name} read without holding the service lock"
        )
        return self.__dict__[name]

    def setter(self, value):
        self.__dict__[name] = value

    return property(getter, setter)


class LockCheckedService(ReconstructionService):
    clock_seconds = _locked_read_property("clock_seconds")
    _running = _locked_read_property("_running")
    _finish_heap = _locked_read_property("_finish_heap")


class FlagLock:
    """Context-manager lock that counts acquisitions."""

    def __init__(self):
        self.entered = 0
        self._lock = threading.Lock()

    def __enter__(self):
        self.entered += 1
        self._lock.__enter__()
        return self

    def __exit__(self, *exc):
        return self._lock.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.entered += 1
        return self._lock.acquire(*args, **kwargs)

    def release(self):
        self._lock.release()


# --------------------------------------------------------------------- #
# Service state
# --------------------------------------------------------------------- #
class TestServiceLockDiscipline:
    def test_event_loop_reads_guarded_state_under_lock(self):
        service = LockCheckedService(cluster_gpus=8)
        assert service.submit(make_job("a"), now=0.0)
        assert service.submit(make_job("b"), now=1.0)
        service.run_until_idle()
        report = service.report()
        assert report.summary["jobs_completed"] == 2

    def test_running_jobs_snapshot_takes_the_lock(self):
        service = LockCheckedService(cluster_gpus=8)
        assert service.running_jobs == []

    def test_reset_takes_the_lock(self):
        service = LockCheckedService(cluster_gpus=8)
        service.submit(make_job("c"), now=0.0)
        service.run_until_idle()
        service.reset()
        with service._lock:
            assert service.clock_seconds == 0.0

    def test_recovery_replays_under_the_lock(self, tmp_path):
        first = LockCheckedService(cluster_gpus=8, state_dir=tmp_path)
        first.submit(make_job("d"), now=0.0)
        first.close()
        second = LockCheckedService(cluster_gpus=8, state_dir=tmp_path)
        try:
            assert second.recovered_jobs == 1
            second.run_until_idle()
            assert second.report().summary["jobs_completed"] == 1
        finally:
            second.close()


# --------------------------------------------------------------------- #
# HTTP front door
# --------------------------------------------------------------------- #
class TestHTTPAdvanceLocking:
    def test_advance_reports_clock_without_unlocked_read(self):
        service = LockCheckedService(cluster_gpus=8)
        server = ServiceHTTPServer(service, auto_advance=False)
        server.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/advance", data=b"", method="POST"
            )
            # Pre-fix: the handler's unlocked clock_seconds read raised
            # AssertionError, which the guard boundary turned into a 500.
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
                body = json.loads(response.read().decode("utf-8"))
            assert body["ok"] is True
            assert body["clock_seconds"] == pytest.approx(0.0)
        finally:
            server.stop()
            service.close()


# --------------------------------------------------------------------- #
# Parallel backend pool state
# --------------------------------------------------------------------- #
class TestPoolStateLocking:
    def test_worker_pool_started_takes_the_lock(self):
        pool = WorkerPool(2)
        flag = FlagLock()
        pool._lock = flag
        assert pool.started is False
        assert flag.entered == 1

    def test_parallel_backend_pool_started_takes_the_init_lock(self):
        backend = ParallelBackend(workers=2)
        flag = FlagLock()
        backend._init_lock = flag
        assert backend.pool_started is False
        assert flag.entered == 1
