"""Property and engine tests for the acquisition-scenario layer.

The redundancy-weight mathematics is pinned by the same style of
property-based tests as the paper's Theorems 1–3 (Hypothesis when
available, seeded sweeps otherwise):

* **Parker pair-sum** — the raw short-scan weights of every conjugate
  (mirror) ray pair sum to exactly 1 for every ``(u, β)``;
* **offset-detector pair-sum** — ``w(u) + w(−u) = 1`` inside the overlap
  band of the shifted panel;
* **angular normalization** — the per-projection angular weights of a
  sparse-view geometry integrate to ``2π`` (and a short-scan's Parker
  column weights integrate to ``π``);
* **noise determinism** — the seeded Poisson+Gaussian forward model is a
  pure function of (stack, model): identical bits on every run.

The engine tests cover the declarative transformations themselves:
geometry derivation, projection/column selection, cache-token identity and
the validation surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CBCTGeometry,
    FDKReconstructor,
    default_geometry_for_problem,
)
from repro.core.filtering import fdk_normalization
from repro.core.forward import apply_poisson_gaussian_noise
from repro.core.types import ProjectionStack
from repro.scenarios import (
    SCENARIO_PRESETS,
    AcquisitionScenario,
    NoiseModel,
    available_scenarios,
    conjugate_angle,
    get_scenario,
    offset_detector_weights,
    parker_weights,
    register_scenario,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is available in CI
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.scenario


BASE = dict(nu=28, nv=20, np_=24, nx=18, ny=14, nz=10)


def base_geometry() -> CBCTGeometry:
    return default_geometry_for_problem(**BASE)


def base_stack(seed: int = 3) -> ProjectionStack:
    geometry = base_geometry()
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(
        (geometry.np_, geometry.nv, geometry.nu)
    ).astype(np.float32)
    return ProjectionStack(data=data, angles=geometry.angles)


# --------------------------------------------------------------------------- #
# Parker weights: conjugate-ray pair sum (the "mirror ray" invariant)
# --------------------------------------------------------------------------- #
def parker_weight_scalar(beta: float, gamma: float, delta: float) -> float:
    return float(parker_weights(np.array([beta]), np.array([gamma]), delta)[0, 0])


def check_parker_pair_sum(delta: float, gamma: float, beta: float) -> None:
    """w(β,γ) plus both possible mirror-ray weights must total exactly 1.

    The conjugate of ``(β, γ)`` lies at ``(β + π + 2γ, −γ)`` (or one full
    conjugate step back); at most one of the two falls inside the scan
    range, and out-of-range rays carry weight 0 — so the total is the unit
    weight of one parallel ray, exactly like the full scan's ``½ + ½``.
    """
    total = (
        parker_weight_scalar(beta, gamma, delta)
        + parker_weight_scalar(conjugate_angle(beta, gamma), -gamma, delta)
        + parker_weight_scalar(beta - np.pi + 2.0 * gamma, -gamma, delta)
    )
    assert total == pytest.approx(1.0, abs=1e-9)


def check_offset_pair_sum(overlap: float, u: float) -> None:
    w_pos = float(offset_detector_weights(np.array([u]), overlap)[0])
    w_neg = float(offset_detector_weights(np.array([-u]), overlap)[0])
    assert 0.0 <= w_pos <= 1.0
    assert w_pos + w_neg == pytest.approx(1.0, abs=1e-9)


if HAVE_HYPOTHESIS:

    @settings(max_examples=50, deadline=None)
    @given(
        delta=st.floats(0.05, np.pi / 2 - 0.05),
        gamma_frac=st.floats(-0.999, 0.999),
        beta_frac=st.floats(0.0, 1.0),
    )
    def test_parker_mirror_ray_weights_sum_to_one(delta, gamma_frac, beta_frac):
        gamma = gamma_frac * delta
        beta = beta_frac * (np.pi + 2.0 * delta)
        check_parker_pair_sum(delta, gamma, beta)

    @settings(max_examples=50, deadline=None)
    @given(overlap=st.floats(0.1, 50.0), u_frac=st.floats(-3.0, 3.0))
    def test_offset_weights_sum_to_one(overlap, u_frac):
        check_offset_pair_sum(overlap, u_frac * overlap)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(50))
    def test_parker_mirror_ray_weights_sum_to_one(seed):
        rng = np.random.default_rng(3000 + seed)
        delta = float(rng.uniform(0.05, np.pi / 2 - 0.05))
        gamma = float(rng.uniform(-0.999, 0.999)) * delta
        beta = float(rng.uniform(0.0, 1.0)) * (np.pi + 2.0 * delta)
        check_parker_pair_sum(delta, gamma, beta)

    @pytest.mark.parametrize("seed", range(50))
    def test_offset_weights_sum_to_one(seed):
        rng = np.random.default_rng(4000 + seed)
        overlap = float(rng.uniform(0.1, 50.0))
        check_offset_pair_sum(overlap, float(rng.uniform(-3.0, 3.0)) * overlap)


def test_parker_table_pairs_sum_on_real_geometry():
    """The applied short-scan table is 2·w with per-(u, β) pair sums of 1."""
    scenario = get_scenario("short_scan")
    geometry = scenario.apply_geometry(base_geometry())
    table = scenario.redundancy_weights(geometry)
    assert table.shape == (geometry.np_, geometry.nu)
    raw = table / 2.0
    delta = (geometry.angular_range - np.pi) / 2.0
    gammas = np.arctan2(geometry.detector_u_mm(), geometry.sdd)
    betas = geometry.angles - geometry.angle_offset
    for s in range(0, geometry.np_, 5):
        for col in range(0, geometry.nu, 7):
            beta, gamma = betas[s], gammas[col]
            conj = (
                parker_weight_scalar(conjugate_angle(beta, gamma), -gamma, delta)
                + parker_weight_scalar(beta - np.pi + 2 * gamma, -gamma, delta)
            )
            assert raw[s, col] + conj == pytest.approx(1.0, abs=1e-9)


def test_parker_column_weights_integrate_to_pi():
    """Σ_β w(β, γ)·θ ≈ π for every detector column (unit ray coverage)."""
    scenario = get_scenario("short_scan")
    geometry = scenario.apply_geometry(base_geometry())
    raw = scenario.redundancy_weights(geometry) / 2.0
    integral = raw.sum(axis=0) * geometry.theta
    np.testing.assert_allclose(integral, np.pi, rtol=0.02)


# --------------------------------------------------------------------------- #
# Angular normalization (sparse-view and short-scan Riemann measures)
# --------------------------------------------------------------------------- #
def test_sparse_view_angular_weights_integrate_to_two_pi():
    """Each sparse projection carries Δβ = 2π/Np' — the sum is still 2π."""
    base = base_geometry()
    for factor in (2, 3, 4):
        scenario = AcquisitionScenario(name=f"sparse{factor}", sparse_factor=factor)
        geometry = scenario.apply_geometry(base)
        assert geometry.np_ == base.np_ // factor
        assert geometry.theta * geometry.np_ == pytest.approx(2.0 * np.pi)
        # The FDK constant follows the coarser angular sampling exactly.
        assert fdk_normalization(geometry) == pytest.approx(
            fdk_normalization(base) * factor
        )


def test_short_scan_span_covers_minimal_parker_range():
    base = base_geometry()
    geometry = get_scenario("short_scan").apply_geometry(base)
    assert geometry.theta == pytest.approx(base.theta)
    assert base.short_scan_span <= geometry.angular_range < base.angular_range
    # Effective delta must dominate every fan angle on the detector.
    delta = (geometry.angular_range - np.pi) / 2.0
    gammas = np.arctan2(geometry.detector_u_mm(), geometry.sdd)
    assert delta >= np.abs(gammas).max() - 1e-12


# --------------------------------------------------------------------------- #
# Noise determinism
# --------------------------------------------------------------------------- #
def test_noise_is_deterministic_per_seed():
    stack = base_stack()
    model = NoiseModel(photons=2e4, electronic_sigma=3.0,
                       attenuation_scale=0.05, seed=42)
    first = model.apply(stack)
    second = model.apply(stack.copy())
    np.testing.assert_array_equal(first.data, second.data)
    different = NoiseModel(photons=2e4, electronic_sigma=3.0,
                           attenuation_scale=0.05, seed=43).apply(stack)
    assert not np.array_equal(first.data, different.data)


def test_noise_changes_data_but_not_shape_or_angles():
    stack = base_stack()
    noisy = apply_poisson_gaussian_noise(
        stack, photons=1e4, attenuation_scale=0.05, seed=1
    )
    assert noisy.data.shape == stack.data.shape
    np.testing.assert_array_equal(noisy.angles, stack.angles)
    assert not np.array_equal(noisy.data, stack.data)
    assert np.isfinite(noisy.data).all()


def test_noisy_scenario_reconstruction_is_deterministic():
    """Two independent runs of the noisy preset agree bit for bit."""
    from repro.scenarios import reconstruct_scenario

    base = base_geometry()
    volumes = [
        reconstruct_scenario(
            "noisy", base, base_stack(), backend="vectorized"
        ).volume.data
        for _ in range(2)
    ]
    np.testing.assert_array_equal(volumes[0], volumes[1])


# --------------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------------- #
def test_full_scan_geometry_is_identity():
    base = base_geometry()
    assert get_scenario("full_scan").apply_geometry(base) == base


def test_offset_detector_geometry_crops_and_shifts():
    base = base_geometry()
    scenario = get_scenario("offset_detector")
    geometry = scenario.apply_geometry(base)
    crop = int(round(scenario.detector_crop_fraction * base.nu))
    assert geometry.nu == base.nu - crop
    assert geometry.detector_offset_u == pytest.approx(crop * base.du / 2.0)
    # The cropped window's physical column positions are the kept columns
    # of the base detector, unchanged.
    np.testing.assert_allclose(
        geometry.detector_u_mm(), base.detector_u_mm()[crop:], atol=1e-12
    )
    # The extended field of view reaches farther than the centred panel's.
    assert geometry.fov_radius() > 0.9 * base.fov_radius()


def test_apply_selects_matching_projections_and_columns():
    base = base_geometry()
    stack = base_stack()
    scenario = get_scenario("sparse_view")
    geometry, sub = scenario.apply(base, stack)
    indices = scenario.projection_indices(base)
    np.testing.assert_array_equal(sub.angles, stack.angles[indices])
    np.testing.assert_array_equal(sub.data, stack.data[indices])
    np.testing.assert_allclose(geometry.angles, sub.angles)


def test_short_scan_keeps_leading_angular_prefix():
    base = base_geometry()
    scenario = get_scenario("short_scan")
    geometry, sub = scenario.apply(base, base_stack())
    assert sub.np_ == geometry.np_ < base.np_
    np.testing.assert_allclose(geometry.angles, base.angles[: geometry.np_])


def test_apply_rejects_filtered_and_mismatched_stacks():
    base = base_geometry()
    stack = base_stack()
    filtered = ProjectionStack(
        data=stack.data.copy(), angles=stack.angles.copy(), filtered=True
    )
    with pytest.raises(ValueError, match="raw measurements"):
        get_scenario("short_scan").apply(base, filtered)
    with pytest.raises(ValueError, match="does not match"):
        get_scenario("short_scan").apply(base.with_detector(16, 16), stack)


def test_scenario_validation():
    with pytest.raises(ValueError, match="cannot be combined"):
        AcquisitionScenario(name="bad", short_scan=True,
                            detector_crop_fraction=0.2)
    with pytest.raises(ValueError, match="0.5"):
        AcquisitionScenario(name="bad", detector_crop_fraction=0.6)
    with pytest.raises(ValueError, match="positive integer"):
        AcquisitionScenario(name="bad", sparse_factor=0)
    with pytest.raises(ValueError, match="fewer than 2"):
        AcquisitionScenario(name="bad", sparse_factor=23).apply_geometry(
            base_geometry()
        )


def test_registry_lists_presets_and_rejects_unknown():
    names = available_scenarios()
    assert names[0] == "full_scan"
    assert len(names) >= 4
    for required in ("short_scan", "offset_detector", "sparse_view", "noisy"):
        assert required in names
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("helical")
    custom = register_scenario(
        AcquisitionScenario(name="test-custom", sparse_factor=2)
    )
    try:
        assert get_scenario("test-custom") is custom
    finally:
        from repro.scenarios import scenario as scenario_module

        scenario_module._registry.pop("test-custom")


def test_cache_tokens_are_distinct_and_stable():
    tokens = {
        name: get_scenario(name).cache_token for name in SCENARIO_PRESETS
    }
    assert tokens["full_scan"] == "full"
    assert len(set(tokens.values())) == len(tokens)
    # Renaming a scenario must not change its cache identity.
    renamed = AcquisitionScenario(name="other-name", sparse_factor=4)
    assert renamed.cache_token == tokens["sparse_view"]


def test_scenario_reconstructor_rejects_prefiltered_stack():
    """Redundancy weights live in the filtering stage: a pre-filtered stack
    would silently skip them, so the reconstructor must refuse it."""
    scenario = get_scenario("short_scan")
    base = base_geometry()
    geometry, sub = scenario.apply(base, base_stack())
    reconstructor = FDKReconstructor(geometry=geometry, scenario=scenario)
    filtered = reconstructor.filter(sub)
    with pytest.raises(ValueError, match="already filtered"):
        reconstructor.reconstruct(filtered)
    from repro.backends import get_backend

    with pytest.raises(ValueError, match="already filtered"):
        get_backend("vectorized").reconstruct(
            filtered, geometry,
            redundancy=scenario.redundancy_weights(geometry),
        )


def test_fdk_reconstructor_resolves_scenario_by_name():
    scenario = get_scenario("short_scan")
    base = base_geometry()
    geometry, sub = scenario.apply(base, base_stack())
    by_name = FDKReconstructor(
        geometry=geometry, backend="vectorized", scenario="short_scan"
    ).reconstruct(sub.copy())
    by_instance = FDKReconstructor(
        geometry=geometry, backend="vectorized", scenario=scenario
    ).reconstruct(sub.copy())
    np.testing.assert_array_equal(
        by_name.volume.data, by_instance.volume.data
    )


# --------------------------------------------------------------------------- #
# Theorem invariants survive scenario geometries
# --------------------------------------------------------------------------- #
def test_theorems_hold_with_detector_offset():
    """Theorems 1–3 (the hoisting the fast backends rely on) are untouched
    by a lateral detector offset — v-mirroring and the u/z/Wdis constancy
    along Z depend only on M0/Mrot, not on where the panel sits."""
    from test_backend_conformance import (
        check_theorem_1_mirror_row,
        check_theorems_2_3_hoisting,
    )

    geometry = get_scenario("offset_detector").apply_geometry(base_geometry())
    assert geometry.detector_offset_u != 0.0
    for beta in (0.1, 2.0, 4.5):
        check_theorem_1_mirror_row(geometry, beta)
        check_theorems_2_3_hoisting(geometry, beta)
