"""Concurrency-determinism harness for the ``parallel`` backend.

The backend's whole contract is that concurrency is *invisible* in the
output: workers own disjoint tiles of one preallocated volume, so the bits
may depend only on the input stack — never on worker count, scheduling
order, pool reuse or repetition.  This module locks that down:

* **same bits across repeated runs** — two executions of the identical
  reconstruction on one backend instance (a reused, warm pool) are
  byte-identical;
* **same bits across worker counts** — workers ∈ {1, 2, 3, 4} all produce
  the identical volume, equal to the single-threaded ``blocked`` backend,
  through the full ``FDKReconstructor`` path (filter + back-project);
* **golden-acquisition hashes** — on the pinned 32³ golden acquisition
  (full scan and Parker-weighted short scan), ``parallel`` reproduces the
  exact vectorized-family hash at every worker count and stays within the
  conformance RMSE of the checked-in golden volumes;
* **no leaked threads** — after ``FDKReconstructor`` teardown every worker
  thread is joined (the accounting idiom of ``repro.mpi.engine``: all
  threads this package starts are named, joinable and attributable).
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.backends import BlockedBackend, ParallelBackend, get_backend
from repro.backends.parallel import WORKER_THREAD_PREFIX, WorkerPool
from repro.core import FDKReconstructor, default_geometry_for_problem
from repro.core.types import ProjectionStack
from repro.scenarios import reconstruct_scenario

import test_golden_fdk as golden

pytestmark = pytest.mark.parallel

DATA_DIR = Path(__file__).parent / "data"

WORKER_COUNTS = (1, 2, 3, 4)


def make_stack(geometry, seed: int = 23, *, filtered: bool = True) -> ProjectionStack:
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(
        (geometry.np_, geometry.nv, geometry.nu)
    ).astype(np.float32)
    return ProjectionStack(data=data, angles=geometry.angles, filtered=filtered)


def parallel_threads(baseline=()):
    return [
        t
        for t in threading.enumerate()
        if t.name.startswith(WORKER_THREAD_PREFIX) and t not in baseline
    ]


# --------------------------------------------------------------------------- #
# Repetition and worker-count invariance
# --------------------------------------------------------------------------- #
def test_repeated_runs_are_bit_identical():
    """A warm, reused pool must not perturb a single bit between runs."""
    geometry = default_geometry_for_problem(nu=28, nv=20, np_=12, nx=18, ny=14, nz=10)
    stack = make_stack(geometry)
    with ParallelBackend(workers=4) as backend:
        first = backend.backproject(stack, geometry, algorithm="proposed").data
        second = backend.backproject(stack, geometry, algorithm="proposed").data
    assert first.tobytes() == second.tobytes()


@pytest.mark.parametrize("algorithm", ["proposed", "standard"])
def test_worker_counts_agree_end_to_end(algorithm):
    """Full FDK (filter + BP) is invariant across workers and equals blocked."""
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=8, nx=16, ny=16, nz=16)
    raw = make_stack(geometry, filtered=False)
    reference_bytes = None
    for workers in WORKER_COUNTS:
        with FDKReconstructor(
            geometry=geometry, algorithm=algorithm, backend="parallel",
            workers=workers,
        ) as reconstructor:
            volume = reconstructor.reconstruct(raw.copy()).volume.data
        if reference_bytes is None:
            reference_bytes = volume.tobytes()
        assert volume.tobytes() == reference_bytes, f"workers={workers} diverged"
    blocked = FDKReconstructor(geometry=geometry, algorithm=algorithm,
                               backend="blocked").reconstruct(raw.copy())
    assert blocked.volume.data.tobytes() == reference_bytes


def test_streaming_and_whole_stack_dispatch_agree():
    """The rank runtime's per-projection add() path equals add_stack()."""
    geometry = default_geometry_for_problem(nu=28, nv=20, np_=6, nx=18, ny=14, nz=10)
    stack = make_stack(geometry)
    with ParallelBackend(workers=3) as backend:
        whole = backend.backproject(stack, geometry, algorithm="proposed").data
        acc = backend.accumulator(geometry, algorithm="proposed")
        for angle, projection in stack:
            acc.add(projection, angle)
        streamed = acc.volume().data
    np.testing.assert_array_equal(streamed, whole)


# --------------------------------------------------------------------------- #
# Golden-acquisition hashes (full scan and short scan)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def family_hashes():
    """Vectorized-family digest per golden family, computed once."""
    return {
        family: hashlib.sha256(
            golden.reconstruct(family, "vectorized").tobytes()
        ).hexdigest()
        for family in sorted(golden.FAMILIES)
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("family", sorted(golden.FAMILIES))
def test_parallel_reproduces_golden_acquisition_hash(family, workers, family_hashes):
    """Every worker count reproduces the family hash on the 32³ golden scans."""
    geometry = golden.golden_geometry()
    stack = golden.golden_stack()
    if family == "full":
        with FDKReconstructor(
            geometry=geometry, backend="parallel", workers=workers
        ) as reconstructor:
            volume = reconstructor.reconstruct(stack).volume.data
    else:
        with ParallelBackend(workers=workers) as backend:
            volume = reconstruct_scenario(
                "short_scan", geometry, stack, backend=backend
            ).volume.data
    digest = hashlib.sha256(volume.tobytes()).hexdigest()
    assert digest == family_hashes[family], (
        f"parallel workers={workers} drifted from the vectorized family on "
        f"the golden {family} acquisition"
    )


@pytest.mark.parametrize("family", sorted(golden.FAMILIES))
def test_parallel_tracks_checked_in_golden_volume(family):
    """And the result stays inside the conformance RMSE of the pinned npz."""
    stem = golden.FAMILIES[family]
    pinned = np.load(DATA_DIR / f"{stem}.npz")["volume"]
    meta = json.loads((DATA_DIR / f"{stem}.json").read_text())
    assert hashlib.sha256(pinned.tobytes()).hexdigest() == meta["sha256"]
    volume = golden.reconstruct(family, "parallel")
    assert golden.rel_rmse(volume, pinned) <= golden.BACKEND_RMSE_TOL


# --------------------------------------------------------------------------- #
# Thread hygiene
# --------------------------------------------------------------------------- #
def test_no_leaked_threads_after_reconstructor_teardown():
    """close() joins every worker the reconstructor's pool started."""
    baseline = parallel_threads()
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=8, nx=16, ny=16, nz=16)
    stack = make_stack(geometry, filtered=False)
    reconstructor = FDKReconstructor(
        geometry=geometry, backend="parallel", workers=3
    )
    reconstructor.reconstruct(stack)
    assert parallel_threads(baseline), "a 3-worker run should have started a pool"
    reconstructor.close()
    leaked = [t for t in parallel_threads(baseline) if t.is_alive()]
    assert not leaked, f"leaked worker threads: {[t.name for t in leaked]}"
    reconstructor.close()  # idempotent


def test_closed_pool_restarts_lazily():
    """Closing a shared backend must never poison later users."""
    backend = ParallelBackend(workers=2)
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=4, nx=12, ny=12, nz=8)
    stack = make_stack(geometry)
    first = backend.backproject(stack, geometry).data
    backend.close()
    assert not backend.pool_started
    second = backend.backproject(stack, geometry).data  # restarts lazily
    np.testing.assert_array_equal(first, second)
    backend.close()


def test_workers_one_never_starts_threads():
    """workers=1 is genuinely single-threaded: inline execution, no pool."""
    baseline = parallel_threads()
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=4, nx=12, ny=12, nz=8)
    stack = make_stack(geometry)
    with ParallelBackend(workers=1) as backend:
        backend.backproject(stack, geometry)
        assert not backend.pool_started
    assert parallel_threads(baseline) == []


def test_malformed_env_workers_fails_on_use_not_import(monkeypatch):
    """A bad REPRO_PARALLEL_WORKERS must not poison package import.

    The registry instance resolves its worker count lazily, so the error
    surfaces as a ValueError on the first parallel execution — inside the
    CLI's normal exit-2 path — never as an import-time crash of unrelated
    commands.
    """
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "banana")
    backend = ParallelBackend()  # construction must succeed
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=4, nx=12, ny=12, nz=8)
    stack = make_stack(geometry)
    with pytest.raises(ValueError, match="REPRO_PARALLEL_WORKERS"):
        backend.backproject(stack, geometry)
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
    assert ParallelBackend().workers == 2


def test_distributed_run_joins_config_owned_pool():
    """IFDKFramework must not leak the pool of an explicit workers count."""
    from repro.pipeline import IFDKConfig, IFDKFramework

    baseline = parallel_threads()
    geometry = default_geometry_for_problem(nu=24, nv=24, np_=8, nx=12, ny=12, nz=8)
    config = IFDKConfig(
        geometry=geometry, rows=2, columns=2, backend="parallel", workers=2
    )
    stack = make_stack(geometry, filtered=False)
    result = IFDKFramework(config).reconstruct(stack)
    assert result.volume.data.shape == (8, 12, 12)
    leaked = [t for t in parallel_threads(baseline) if t.is_alive()]
    assert not leaked, f"leaked worker threads: {[t.name for t in leaked]}"


def test_worker_pool_validation_and_error_propagation():
    with pytest.raises(ValueError, match="positive integer"):
        WorkerPool(0)
    with pytest.raises(ValueError, match="positive integer"):
        ParallelBackend(workers=-2)
    pool = WorkerPool(2)
    boom = RuntimeError("tile failed")

    def bad():
        raise boom

    with pytest.raises(RuntimeError, match="tile failed"):
        pool.run([bad, lambda: None])
    pool.close()
