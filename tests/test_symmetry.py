"""Property-based tests of the three theorems (Section 3.2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import CBCTGeometry
from repro.core.symmetry import (
    check_theorem1,
    check_theorem2,
    check_theorem3,
    mirrored_detector_row,
    mirrored_voxel,
    verify_geometry_symmetry,
)


def _geometry(nu, nv, np_, nx, ny, nz, sad, mag, du, dv, dx):
    return CBCTGeometry(
        nu=nu, nv=nv, np_=np_,
        du=du, dv=dv,
        sad=sad, sdd=sad * mag,
        nx=nx, ny=ny, nz=nz,
        dx=dx, dy=dx, dz=dx,
    )


geometry_strategy = st.builds(
    _geometry,
    nu=st.integers(8, 64),
    nv=st.integers(8, 64),
    np_=st.integers(4, 32),
    nx=st.integers(4, 48),
    ny=st.integers(4, 48),
    nz=st.integers(4, 48),
    sad=st.floats(50.0, 500.0),
    mag=st.floats(1.1, 3.0),
    du=st.floats(0.1, 4.0),
    dv=st.floats(0.1, 4.0),
    dx=st.floats(0.1, 2.0),
)


class TestMirrorHelpers:
    def test_mirrored_voxel(self):
        assert mirrored_voxel(0, 10) == 9
        assert mirrored_voxel(4, 10) == 5

    def test_mirrored_voxel_bounds(self):
        with pytest.raises(ValueError):
            mirrored_voxel(10, 10)

    def test_mirrored_detector_row(self):
        np.testing.assert_allclose(mirrored_detector_row(np.array([0.0, 3.5]), 8), [7.0, 3.5])


class TestTheoremsOnFixedGeometry:
    def test_theorem1_exact(self, small_geometry):
        pm = small_geometry.projection_matrix(0.77)
        du, dv = check_theorem1(pm, 3, 7, np.arange(small_geometry.nz))
        assert np.max(np.abs(du)) < 1e-9
        assert np.max(np.abs(dv)) < 1e-9

    def test_theorem2_exact(self, small_geometry):
        pm = small_geometry.projection_matrix(1.9)
        spread = check_theorem2(pm, np.arange(0, small_geometry.nx, 5), 11)
        assert np.max(spread) < 1e-9

    def test_theorem3_exact(self, small_geometry):
        pm = small_geometry.projection_matrix(2.5)
        residual = check_theorem3(pm, np.arange(0, small_geometry.nx, 3), 4)
        assert np.max(residual) < 1e-8

    def test_report_holds(self, small_geometry):
        report = verify_geometry_symmetry(small_geometry)
        assert report.holds(atol=1e-6)


@given(geometry=geometry_strategy, beta=st.floats(0.0, 2 * np.pi))
@settings(max_examples=40, deadline=None)
def test_all_theorems_hold_for_random_geometries(geometry, beta):
    """Theorems 1-3 are exact for every circular-orbit geometry of Eq. 2."""
    report = verify_geometry_symmetry(geometry, beta=beta, samples=4)
    # Residuals are round-off relative to the geometry scale.
    scale = max(geometry.sad, geometry.nu, geometry.nv)
    assert report.theorem1_u <= 1e-9 * scale
    assert report.theorem1_v <= 1e-9 * scale
    assert report.theorem2_u_spread <= 1e-9 * scale
    assert report.theorem3_z_residual <= 1e-9 * scale
