"""Unit tests for repro.core.phantom."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phantom import (
    Ellipsoid,
    EllipsoidPhantom,
    point_grid_phantom,
    shepp_logan_2d,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
    uniform_sphere_phantom,
)


class TestEllipsoid:
    def test_contains_center_and_not_outside(self):
        e = Ellipsoid(value=1.0, center=(0.1, 0.0, 0.0), axes=(0.2, 0.3, 0.4))
        assert e.contains(np.array([[0.1, 0.0, 0.0]]))[0]
        assert not e.contains(np.array([[0.9, 0.9, 0.9]]))[0]

    def test_rotation_is_orthonormal(self):
        e = Ellipsoid(value=1.0, center=(0, 0, 0), axes=(1, 1, 1), phi_deg=33.0)
        rot = e.rotation()
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_line_integral_through_center_of_sphere(self):
        e = Ellipsoid(value=2.0, center=(0, 0, 0), axes=(0.5, 0.5, 0.5))
        origins = np.array([[-2.0, 0.0, 0.0]])
        directions = np.array([[1.0, 0.0, 0.0]])
        # Chord through the centre has length 1.0; density 2.0 -> integral 2.0.
        assert e.line_integral(origins, directions)[0] == pytest.approx(2.0)

    def test_line_integral_missing_ray_is_zero(self):
        e = Ellipsoid(value=1.0, center=(0, 0, 0), axes=(0.1, 0.1, 0.1))
        origins = np.array([[-2.0, 1.0, 0.0]])
        directions = np.array([[1.0, 0.0, 0.0]])
        assert e.line_integral(origins, directions)[0] == 0.0

    def test_line_integral_scales_with_direction_norm_consistently(self):
        e = Ellipsoid(value=1.0, center=(0, 0, 0), axes=(0.5, 0.5, 0.5))
        origins = np.array([[-2.0, 0.0, 0.0]])
        d1 = np.array([[1.0, 0.0, 0.0]])
        d2 = np.array([[4.0, 0.0, 0.0]])
        # The chord length is geometric, independent of the parameterization.
        assert e.line_integral(origins, d1)[0] == pytest.approx(
            e.line_integral(origins, d2)[0]
        )


class TestEllipsoidPhantom:
    def test_requires_at_least_one_ellipsoid(self):
        with pytest.raises(ValueError):
            EllipsoidPhantom([])

    def test_rasterize_shape_and_dtype(self):
        vol = uniform_sphere_phantom().rasterize(8, 10, 12)
        assert vol.shape == (12, 10, 8)
        assert vol.data.dtype == np.float32

    def test_rasterize_sphere_values(self):
        vol = uniform_sphere_phantom(radius=0.6, value=2.0).rasterize(32, 32, 32)
        center = vol.data[16, 16, 16]
        corner = vol.data[0, 0, 0]
        assert center == pytest.approx(2.0)
        assert corner == 0.0

    def test_supersampling_smooths_boundary(self):
        sharp = uniform_sphere_phantom().rasterize(16, 16, 16, supersample=1)
        smooth = uniform_sphere_phantom().rasterize(16, 16, 16, supersample=2)
        # Total mass is similar but the supersampled volume has intermediate values.
        assert smooth.data.sum() == pytest.approx(sharp.data.sum(), rel=0.1)
        assert np.any((smooth.data > 0.01) & (smooth.data < 0.99))

    def test_rejects_bad_supersample(self):
        with pytest.raises(ValueError):
            uniform_sphere_phantom().rasterize(8, 8, 8, supersample=0)

    def test_density_at_matches_rasterization_at_centers(self):
        phantom = uniform_sphere_phantom(radius=0.5, value=3.0)
        assert phantom.density_at(np.array([[0.0, 0.0, 0.0]]))[0] == pytest.approx(3.0)
        assert phantom.density_at(np.array([[0.9, 0.0, 0.0]]))[0] == 0.0

    def test_line_integrals_sum_over_ellipsoids(self):
        phantom = point_grid_phantom(spacing=0.5, size=0.05)
        origins = np.array([[-2.0, 0.0, 0.0]])
        directions = np.array([[1.0, 0.0, 0.0]])
        # The central row of the grid contains 3 spheres of diameter 0.1.
        assert phantom.line_integrals(origins, directions)[0] == pytest.approx(0.3, rel=1e-6)


class TestSheppLogan:
    def test_ten_ellipsoids(self):
        assert len(shepp_logan_ellipsoids()) == 10
        assert len(shepp_logan_ellipsoids(modified=False)) == 10

    def test_modified_values_differ_from_classic(self):
        modified = shepp_logan_ellipsoids(modified=True)
        classic = shepp_logan_ellipsoids(modified=False)
        assert modified[0].value == pytest.approx(1.0)
        assert classic[0].value == pytest.approx(2.0)
        # Geometry is identical.
        assert modified[3].axes == classic[3].axes

    def test_3d_volume_value_range(self):
        vol = shepp_logan_3d(32)
        assert vol.shape == (32, 32, 32)
        assert vol.data.min() >= -1e-6
        assert vol.data.max() <= 1.0 + 1e-6
        # The interior (brain matter) sits near 0.2 for the modified phantom.
        assert vol.data[16, 16, 16] == pytest.approx(0.2, abs=0.05)

    def test_3d_anisotropic_shapes(self):
        vol = shepp_logan_3d(16, 24, 8)
        assert vol.shape == (8, 24, 16)

    def test_2d_slice_matches_3d_central_slice_structure(self):
        img = shepp_logan_2d(64)
        assert img.shape == (64, 64)
        assert img.max() <= 1.0 + 1e-6
        # Outer skull ring present: max near 1, background 0.
        assert img[0, 0] == 0.0
