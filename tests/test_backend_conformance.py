"""Cross-backend conformance and property tests for the FDK hot paths.

This is the contract that makes every future speed PR safe to land: any
compute backend registered in :mod:`repro.backends` must reproduce the
``reference`` backend on a matrix of

    backend x geometry preset x input dtype x Z-slab decomposition

for both back-projection algorithms and for the ramp-filtering stage — and,
since the acquisition-scenario engine landed, on a second matrix of

    scenario preset x backend x input dtype

so that every non-ideal workload (short-scan Parker weighting,
offset-detector redundancy, sparse-view renormalization, seeded noise) is
provably identical across backends too (``scenario`` marker).

Two tiers of agreement are asserted:

* **tolerance** — every backend agrees with ``reference`` to a relative
  RMSE of at most ``RMSE_TOL`` (1e-5, per the conformance contract; the
  NumPy backends actually land around 1e-7);
* **bit-exact** — backends that share arithmetic and differ only in
  traversal order (``blocked`` vs ``vectorized``, any byte budget; slab
  decompositions of either; ``parallel`` at any worker count, workers
  owning disjoint tiles) must produce *identical* float32 volumes.

On top of the matrix, property-based tests (Hypothesis when available,
seeded random sweeps otherwise) check the paper's theorem invariants that
the fast backends' algebraic rearrangements rely on:

* **Theorem 1** — the detector row of the Z-mirrored voxel is the
  reflection ``v~ = Nv - 1 - v``;
* **Theorem 2** — the detector column ``u`` is constant along Z;
* **Theorem 3** — the perspective divisor ``z`` (hence ``1/z`` and the
  distance weight ``Wdis = 1/z²``) is constant along Z and matches the
  closed-form expression of Equation 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    BlockedBackend,
    ParallelBackend,
    available_backends,
    get_backend,
    plan_tiles,
)
from repro.backends.parallel import partition_tiles, refine_tiles
from repro.core import CBCTGeometry, FDKReconstructor, default_geometry_for_problem
from repro.core.types import DEFAULT_DTYPE, ProjectionStack
from repro.scenarios import SCENARIO_PRESETS, get_scenario, reconstruct_scenario

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is available in CI
    HAVE_HYPOTHESIS = False

#: Conformance bound: relative RMSE against the reference backend.
RMSE_TOL = 1e-5

#: Backends that must be bit-identical to each other (shared arithmetic).
EXACT_FAMILY = ("vectorized", "blocked", "parallel")

#: Worker counts the parallel backend must be bit-exact across.
WORKER_COUNTS = (1, 2, 4)

#: Geometry presets: a cube, an anisotropic volume/detector, and an odd-Nz
#: volume (exercises the unpaired centre slice of the symmetry path).
GEOMETRY_PRESETS = {
    "cube16": dict(nu=24, nv=24, np_=8, nx=16, ny=16, nz=16),
    "aniso": dict(nu=28, nv=20, np_=6, nx=18, ny=14, nz=10),
    "odd-z": dict(nu=24, nv=26, np_=5, nx=12, ny=12, nz=9),
}

DTYPES = ("float32", "float64")

#: Z-slab decompositions, as fractions of Nz: the full volume, two halves,
#: and three deliberately uneven slabs (what a heterogeneous grid produces).
SLAB_SPLITS = {
    "full": (1.0,),
    "halves": (0.5, 0.5),
    "uneven": (0.25, 0.375, 0.375),
}

ALGORITHMS = ("proposed", "standard")
NON_REFERENCE = tuple(n for n in BACKEND_NAMES if n != "reference")


def make_geometry(preset: str) -> CBCTGeometry:
    return default_geometry_for_problem(**GEOMETRY_PRESETS[preset])


def make_stack(geometry: CBCTGeometry, dtype: str, *, filtered: bool = True,
               seed: int = 7) -> ProjectionStack:
    """A seeded random stack whose raw data is generated in ``dtype``.

    The stack normalizes to float32 (the paper runs single precision
    everywhere); generating in both dtypes verifies the backends agree on
    how inputs are coerced, not just on pre-coerced data.
    """
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(
        (geometry.np_, geometry.nv, geometry.nu)
    ).astype(dtype)
    return ProjectionStack(data=data, angles=geometry.angles, filtered=filtered)


def slab_ranges(nz: int, fractions) -> list:
    """Concrete ``(z0, z1)`` slabs covering ``[0, nz)`` for the given split."""
    edges = [0]
    for fraction in fractions[:-1]:
        edges.append(edges[-1] + max(1, int(round(nz * fraction))))
    edges.append(nz)
    return [(z0, z1) for z0, z1 in zip(edges, edges[1:]) if z1 > z0]


def backproject_by_slabs(backend_name: str, stack, geometry, algorithm, fractions):
    """Back-project slab by slab and stitch, as the distributed ranks do."""
    backend = get_backend(backend_name)
    pieces = [
        backend.backproject(stack, geometry, algorithm=algorithm, z_range=(z0, z1)).data
        for z0, z1 in slab_ranges(geometry.nz, fractions)
    ]
    return np.concatenate(pieces, axis=0)


def rel_rmse(result: np.ndarray, reference: np.ndarray) -> float:
    scale = float(np.abs(reference).max()) or 1.0
    return float(np.sqrt(np.mean((result.astype(np.float64) - reference) ** 2))) / scale


# --------------------------------------------------------------------------- #
# Shared reference results (one per algorithm x preset x dtype)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reference_volumes():
    cache = {}

    def compute(algorithm: str, preset: str, dtype: str) -> np.ndarray:
        key = (algorithm, preset, dtype)
        if key not in cache:
            geometry = make_geometry(preset)
            stack = make_stack(geometry, dtype)
            cache[key] = get_backend("reference").backproject(
                stack, geometry, algorithm=algorithm
            ).data.astype(np.float64)
        return cache[key]

    return compute


# --------------------------------------------------------------------------- #
# The conformance matrix
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("slab", sorted(SLAB_SPLITS))
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("preset", sorted(GEOMETRY_PRESETS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_backproject_matches_reference(
    backend, algorithm, preset, dtype, slab, reference_volumes
):
    geometry = make_geometry(preset)
    stack = make_stack(geometry, dtype)
    result = backproject_by_slabs(
        backend, stack, geometry, algorithm, SLAB_SPLITS[slab]
    )
    reference = reference_volumes(algorithm, preset, dtype)
    assert result.shape == reference.shape
    assert rel_rmse(result, reference) <= RMSE_TOL


@pytest.mark.parametrize("slab", sorted(SLAB_SPLITS))
@pytest.mark.parametrize("preset", sorted(GEOMETRY_PRESETS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_reference_slab_decomposition_conforms(
    algorithm, preset, slab, reference_volumes
):
    """Reference's own slab stitching stays within tolerance of its full run.

    (The proposed algorithm's symmetry pairing differs per slab, so this is
    a tolerance bound, not bit-exactness — exactly Theorem 1's claim.)
    """
    geometry = make_geometry(preset)
    stack = make_stack(geometry, "float32")
    result = backproject_by_slabs(
        "reference", stack, geometry, algorithm, SLAB_SPLITS[slab]
    )
    assert rel_rmse(result, reference_volumes(algorithm, preset, "float32")) <= RMSE_TOL


@pytest.mark.parametrize("budget", [1 << 14, 1 << 18, 1 << 25])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_blocked_is_bit_exact_with_vectorized(algorithm, budget):
    """Any tile size must reproduce the vectorized volume bit for bit."""
    geometry = make_geometry("aniso")
    stack = make_stack(geometry, "float32")
    vectorized = get_backend("vectorized").backproject(
        stack, geometry, algorithm=algorithm
    ).data
    blocked = BlockedBackend(byte_budget=budget).backproject(
        stack, geometry, algorithm=algorithm
    ).data
    np.testing.assert_array_equal(blocked, vectorized)


@pytest.mark.parallel
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_parallel_is_bit_exact_with_blocked_and_vectorized(algorithm, workers):
    """Every worker count must reproduce blocked *and* vectorized bit-for-bit."""
    geometry = make_geometry("aniso")
    stack = make_stack(geometry, "float32")
    vectorized = get_backend("vectorized").backproject(
        stack, geometry, algorithm=algorithm
    ).data
    blocked = get_backend("blocked").backproject(
        stack, geometry, algorithm=algorithm
    ).data
    with ParallelBackend(workers=workers) as backend:
        parallel = backend.backproject(stack, geometry, algorithm=algorithm).data
    np.testing.assert_array_equal(parallel, blocked)
    np.testing.assert_array_equal(parallel, vectorized)


@pytest.mark.parallel
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_filter_is_bit_exact_across_worker_counts(workers):
    """Concurrent row groups must not change a single filtered bit."""
    geometry = make_geometry("cube16")
    raw = make_stack(geometry, "float32", filtered=False)
    blocked = get_backend("blocked").filter_stack(raw, geometry).data
    with ParallelBackend(workers=workers) as backend:
        parallel = backend.filter_stack(raw, geometry).data
    np.testing.assert_array_equal(parallel, blocked)


@pytest.mark.parametrize("slab", ["halves", "uneven"])
@pytest.mark.parametrize("backend", EXACT_FAMILY)
def test_exact_family_slab_decomposition_is_bit_exact(backend, slab):
    """Direct Z evaluation makes slab stitching lossless for the fast family."""
    geometry = make_geometry("odd-z")
    stack = make_stack(geometry, "float32")
    full = get_backend(backend).backproject(stack, geometry, algorithm="proposed").data
    stitched = backproject_by_slabs(
        backend, stack, geometry, "proposed", SLAB_SPLITS[slab]
    )
    np.testing.assert_array_equal(stitched, full)


# --------------------------------------------------------------------------- #
# The scenario x backend x dtype matrix
# --------------------------------------------------------------------------- #
#: Base acquisition for the scenario matrix: enough projections that the
#: short-scan subset and the 1/4 sparse subset are both non-trivial.
SCENARIO_BASE = dict(nu=28, nv=20, np_=24, nx=18, ny=14, nz=10)

SCENARIO_NAMES = tuple(sorted(SCENARIO_PRESETS))


def scenario_base_geometry() -> CBCTGeometry:
    return default_geometry_for_problem(**SCENARIO_BASE)


def scenario_base_stack(dtype: str, seed: int = 11) -> ProjectionStack:
    geometry = scenario_base_geometry()
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(
        (geometry.np_, geometry.nv, geometry.nu)
    ).astype(dtype)
    return ProjectionStack(data=data, angles=geometry.angles, filtered=False)


@pytest.fixture(scope="module")
def scenario_reference_volumes():
    """Reference-backend volume per (scenario, dtype), computed once."""
    cache = {}

    def compute(scenario: str, dtype: str) -> np.ndarray:
        key = (scenario, dtype)
        if key not in cache:
            result = reconstruct_scenario(
                scenario, scenario_base_geometry(), scenario_base_stack(dtype),
                backend="reference",
            )
            cache[key] = result.volume.data.astype(np.float64)
        return cache[key]

    return compute


@pytest.mark.scenario
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_scenario_backend_matches_reference(
    backend, scenario, dtype, scenario_reference_volumes
):
    """Every scenario preset conforms on every backend and input dtype."""
    result = reconstruct_scenario(
        scenario, scenario_base_geometry(), scenario_base_stack(dtype),
        backend=backend,
    )
    reference = scenario_reference_volumes(scenario, dtype)
    assert result.volume.data.shape == reference.shape
    assert rel_rmse(result.volume.data, reference) <= RMSE_TOL


@pytest.mark.scenario
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_scenario_exact_family_is_bit_identical(scenario):
    """Redundancy weighting must not break the family's bit-equality."""
    volumes = [
        reconstruct_scenario(
            scenario, scenario_base_geometry(), scenario_base_stack("float32"),
            backend=backend,
        ).volume.data
        for backend in EXACT_FAMILY
    ]
    for other in volumes[1:]:
        np.testing.assert_array_equal(volumes[0], other)


@pytest.mark.scenario
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_scenario_slab_decomposition_conforms(backend):
    """Short-scan reconstruction distributes over Z slabs like the full scan."""
    scenario = get_scenario("short_scan")
    base = scenario_base_geometry()
    stack = scenario_base_stack("float32")
    geometry, scenario_stack = scenario.apply(base, stack)
    reconstructor = FDKReconstructor(
        geometry=geometry, backend=backend, scenario=scenario
    )
    filtered = reconstructor.filter(scenario_stack)
    full = get_backend(backend).backproject(filtered, geometry).data
    stitched = np.concatenate(
        [
            get_backend(backend).backproject(
                filtered, geometry, z_range=(z0, z1)
            ).data
            for z0, z1 in slab_ranges(geometry.nz, SLAB_SPLITS["uneven"])
        ],
        axis=0,
    )
    assert rel_rmse(stitched, full.astype(np.float64)) <= RMSE_TOL


@pytest.mark.scenario
def test_scenario_full_scan_is_the_seed_arithmetic():
    """The full_scan preset must be a strict no-op: identical bits."""
    base = scenario_base_geometry()
    stack = scenario_base_stack("float32")
    seed_volume = FDKReconstructor(geometry=base, backend="vectorized").reconstruct(
        stack.copy()
    ).volume.data
    scenario_volume = reconstruct_scenario(
        "full_scan", base, stack, backend="vectorized"
    ).volume.data
    np.testing.assert_array_equal(scenario_volume, seed_volume)


# --------------------------------------------------------------------------- #
# Filtering conformance
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("window", ["ram-lak", "hann"])
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("preset", sorted(GEOMETRY_PRESETS))
@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_filter_matches_reference(backend, preset, dtype, window):
    geometry = make_geometry(preset)
    raw = make_stack(geometry, dtype, filtered=False)
    reference = get_backend("reference").filter_stack(raw, geometry, window).data
    result = get_backend(backend).filter_stack(raw, geometry, window).data
    assert rel_rmse(result, reference.astype(np.float64)) <= RMSE_TOL


def test_blocked_filter_is_bit_exact_with_vectorized():
    geometry = make_geometry("cube16")
    raw = make_stack(geometry, "float32", filtered=False)
    vectorized = get_backend("vectorized").filter_stack(raw, geometry).data
    for budget in (1 << 12, 1 << 20):
        blocked = BlockedBackend(byte_budget=budget).filter_stack(raw, geometry).data
        np.testing.assert_array_equal(blocked, vectorized)


# --------------------------------------------------------------------------- #
# End-to-end through FDKReconstructor (the seam every layer uses)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_fdk_reconstructor_backend_conforms(backend, small_projections, small_geometry):
    reference = FDKReconstructor(geometry=small_geometry).reconstruct(
        small_projections.copy()
    )
    result = FDKReconstructor(geometry=small_geometry, backend=backend).reconstruct(
        small_projections.copy()
    )
    assert rel_rmse(
        result.volume.data, reference.volume.data.astype(np.float64)
    ) <= RMSE_TOL


@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_backprojector_streaming_seam_conforms(backend):
    """The BackProjector (the rank runtime's BP thread) honours backends."""
    from repro.core.backprojection import BackProjector

    geometry = make_geometry("aniso")
    stack = make_stack(geometry, "float32")
    z_range = (2, 8)
    results = {}
    for name in ("reference", backend):
        projector = BackProjector(
            geometry, algorithm="proposed", z_range=z_range, backend=name
        )
        for angle, projection in stack:
            projector.accumulate(projection, angle)
        assert projector.projections_processed == stack.np_
        results[name] = projector.volume().data
    assert rel_rmse(
        results[backend], results["reference"].astype(np.float64)
    ) <= RMSE_TOL


def test_unknown_backend_is_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("cuda")
    assert "reference" in available_backends()


def test_plan_tiles_covers_slab_exactly():
    tiles = plan_tiles(9, 14, 18, 26, byte_budget=1 << 14)
    covered = np.zeros((9, 14), dtype=int)
    for z0, z1, y0, y1 in tiles:
        covered[z0:z1, y0:y1] += 1
    np.testing.assert_array_equal(covered, 1)


@pytest.mark.parallel
@pytest.mark.parametrize("workers", WORKER_COUNTS + (5,))
def test_refined_partition_is_disjoint_and_exact(workers):
    """Refinement + round-robin sharding still covers every (z, y) once."""
    tiles = refine_tiles(plan_tiles(9, 14, 18, 26, byte_budget=1 << 25), workers)
    assert len(tiles) >= min(workers, 9 * 14)
    shards = partition_tiles(tiles, workers)
    assert len(shards) <= workers
    covered = np.zeros((9, 14), dtype=int)
    for shard in shards:
        for z0, z1, y0, y1 in shard:
            covered[z0:z1, y0:y1] += 1
    np.testing.assert_array_equal(covered, 1)
    # Refinement is deterministic: same inputs, same plan.
    again = refine_tiles(plan_tiles(9, 14, 18, 26, byte_budget=1 << 25), workers)
    assert tiles == again


# --------------------------------------------------------------------------- #
# Theorem invariants (property-based)
# --------------------------------------------------------------------------- #
def random_geometry(rng_or_draw) -> CBCTGeometry:
    """A small random geometry, from a Hypothesis draw or a numpy RNG."""
    if isinstance(rng_or_draw, np.random.Generator):
        rng = rng_or_draw
        pick = lambda lo, hi: int(rng.integers(lo, hi + 1))  # noqa: E731
    else:
        draw = rng_or_draw
        pick = lambda lo, hi: draw(st.integers(lo, hi))  # noqa: E731
    return default_geometry_for_problem(
        nu=pick(8, 40), nv=pick(8, 40), np_=pick(2, 12),
        nx=pick(4, 24), ny=pick(4, 24), nz=pick(2, 24),
    )


def check_theorem_1_mirror_row(geometry: CBCTGeometry, beta: float) -> None:
    pm = geometry.projection_matrix(beta)
    i = np.arange(geometry.nx, dtype=np.float64)[None, :]
    j = np.arange(geometry.ny, dtype=np.float64)[:, None]
    for k in range(geometry.nz // 2 + 1):
        _, v, z = pm.project(i, j, k)
        _, v_mirror, _ = pm.project(i, j, geometry.nz - 1 - k)
        np.testing.assert_allclose(
            v_mirror, (geometry.nv - 1) - v, rtol=0, atol=1e-8 * geometry.nv
        )


def check_theorems_2_3_hoisting(geometry: CBCTGeometry, beta: float) -> None:
    pm = geometry.projection_matrix(beta)
    i = np.arange(geometry.nx, dtype=np.float64)[None, :]
    j = np.arange(geometry.ny, dtype=np.float64)[:, None]
    u0, _, z0 = pm.project(i, j, 0)
    # Closed-form divisor of Equation 3 (what the hoisted kernels compute).
    closed_form = geometry.perspective_divisor(beta, i, j)
    np.testing.assert_allclose(z0, closed_form, rtol=1e-12, atol=1e-9)
    for k in (1, geometry.nz // 2, geometry.nz - 1):
        u, _, z = pm.project(i, j, k)
        np.testing.assert_allclose(u, u0, rtol=0, atol=1e-9 * geometry.nu)
        np.testing.assert_allclose(z, z0, rtol=1e-12, atol=1e-9)
        # Wdis = 1/z² is therefore constant along Z as well (Theorem 3).
        np.testing.assert_allclose(1.0 / (z * z), 1.0 / (z0 * z0), rtol=1e-9)


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), beta=st.floats(0.0, 2.0 * np.pi))
    def test_theorem_1_mirror_row_reflection(data, beta):
        check_theorem_1_mirror_row(random_geometry(data.draw), beta)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), beta=st.floats(0.0, 2.0 * np.pi))
    def test_theorems_2_3_u_z_wdis_constant_along_z(data, beta):
        check_theorems_2_3_hoisting(random_geometry(data.draw), beta)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(25))
    def test_theorem_1_mirror_row_reflection(seed):
        rng = np.random.default_rng(1000 + seed)
        check_theorem_1_mirror_row(
            random_geometry(rng), float(rng.uniform(0.0, 2.0 * np.pi))
        )

    @pytest.mark.parametrize("seed", range(25))
    def test_theorems_2_3_u_z_wdis_constant_along_z(seed):
        rng = np.random.default_rng(2000 + seed)
        check_theorems_2_3_hoisting(
            random_geometry(rng), float(rng.uniform(0.0, 2.0 * np.pi))
        )
