"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The at-scale
numbers come from the calibrated performance model (the substrates that the
paper measures — 2,048 V100s, InfiniBand, GPFS — are simulated, see
DESIGN.md); the functional measurements that feed pytest-benchmark run on
scaled-down problems so the harness completes in minutes.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
tables printed next to the paper's reference values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EllipsoidPhantom,
    default_geometry_for_problem,
    forward_project_analytic,
    fdk_weight_and_filter,
    shepp_logan_ellipsoids,
)


@pytest.fixture(scope="session")
def bench_geometry():
    """Geometry used by the functional (measured) benchmark kernels."""
    return default_geometry_for_problem(nu=64, nv=64, np_=32, nx=48, ny=48, nz=48)


@pytest.fixture(scope="session")
def bench_projections(bench_geometry):
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    return forward_project_analytic(phantom, bench_geometry)


@pytest.fixture(scope="session")
def bench_filtered(bench_geometry, bench_projections):
    return fdk_weight_and_filter(bench_projections, bench_geometry)
