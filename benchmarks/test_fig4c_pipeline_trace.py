"""Figure 4c: pipeline orchestration and overlap inside one rank.

The paper's Figure 4c shows a real 4K run on 128 GPUs where loading +
filtering (19 s), AllGather and back-projection overlap inside each rank,
followed by the serial D2H / Reduce / store tail.  Here the same structure
is produced twice:

* at scale, from the performance model (the numbers printed next to the
  paper's annotations), and
* functionally, by tracing a scaled-down run and checking that the stages
  really did overlap (δ > 1 would require more concurrency than a 2-core CI
  runner guarantees, so the functional check is on structure, not on δ).
"""

from __future__ import annotations

import numpy as np

from repro.bench import PROBLEM_4K, format_table
from repro.core import default_geometry_for_problem, forward_project_analytic, uniform_sphere_phantom
from repro.pipeline import (
    ABCI_MICROBENCHMARKS,
    IFDKConfig,
    IFDKFramework,
    IFDKPerformanceModel,
    summarize_events,
)

#: Annotations of Figure 4c (128 GPUs, R=32, C=4).
PAPER_FIG4C = {
    "load+filter": 19.0,
    "allgather": 15.0,
    "backprojection": 14.0,   # 1024 projections per rank at ~190 GUPS
    "d2h": 4.7,
    "reduce": 4.2,
    "store": 11.0,
}


def test_fig4c_pipeline_breakdown(benchmark):
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)

    def build():
        b = model.breakdown(PROBLEM_4K, rows=32, columns=4)
        return {
            "allgather": b.t_allgather,
            "backprojection": b.t_bp,
            "d2h": b.t_d2h,
            "reduce": b.t_reduce,
            "store": b.t_store,
            "compute": b.t_compute,
            "runtime": b.t_runtime,
            "delta": b.delta,
        }

    modelled = benchmark(build)
    rows = [
        {"stage": stage, "model (s)": modelled.get(stage, float("nan")),
         "paper (s)": seconds}
        for stage, seconds in PAPER_FIG4C.items()
    ]
    print()
    print(format_table(rows, ["stage", "model (s)", "paper (s)"],
                       title="Figure 4c — pipeline stages, 4K on 128 GPUs (R=32, C=4)"))
    print(f"modelled T_compute = {modelled['compute']:.1f} s "
          f"(paper 18.9 s), delta = {modelled['delta']:.2f} (paper 1.6)")
    # The structural claims of Figure 4c / Table 5 at this configuration:
    assert modelled["backprojection"] > modelled["allgather"] * 0.5
    assert modelled["compute"] < modelled["allgather"] + modelled["backprojection"]
    assert 1.0 <= modelled["delta"] <= 2.5
    assert modelled["compute"] == benchmark.extra_info.get("compute", modelled["compute"])


def test_fig4c_functional_trace(benchmark):
    """Trace a real scaled-down run and verify the three-thread structure."""
    geometry = default_geometry_for_problem(nu=48, nv=48, np_=16, nx=32, ny=32, nz=32)
    stack = forward_project_analytic(uniform_sphere_phantom(), geometry)
    config = IFDKConfig(geometry=geometry, rows=4, columns=4)

    def run():
        return IFDKFramework(config).reconstruct(stack)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rank0 = result.rank_results[0]
    summary = summarize_events(rank0.events)
    # Every pipeline stage of Figure 4 appears in the trace.
    for stage in ("load", "filter", "allgather", "backprojection", "d2h", "reduce"):
        assert stage in summary, f"missing stage {stage}"
        assert summary[stage].events > 0
    # The rank processed one AllGather round per owned projection.
    assert summary["allgather"].events == config.projections_per_rank
    print(f"\nrank-0 stage seconds: "
          f"{ {k: round(v.total_seconds, 3) for k, v in summary.items()} }, "
          f"overlap delta = {rank0.overlap_delta:.2f}")
    assert np.isfinite(rank0.overlap_delta)
