"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each ablation isolates one design
decision of iFDK and quantifies its effect through the same models used for
the main results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import PROBLEM_4K, TABLE4_PROBLEMS, format_table
from repro.core.backprojection import backproject_proposed
from repro.gpusim import BP_L1, L1_TRAN, BackprojectionCostModel, TESLA_V100
from repro.pfs import PFSConfig
from repro.pipeline import ABCI_MICROBENCHMARKS, IFDKPerformanceModel

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default


def test_ablation_projection_transpose_for_l1_path(benchmark):
    """Bp-L1 vs L1-Tran: the transpose is what makes the L1 path viable."""
    model = BackprojectionCostModel(TESLA_V100)

    def build():
        return [
            {
                "problem": str(p),
                "Bp-L1": model.gups(BP_L1, p),
                "L1-Tran": model.gups(L1_TRAN, p),
                "speedup": model.gups(L1_TRAN, p) / model.gups(BP_L1, p),
            }
            for p in TABLE4_PROBLEMS
        ]

    rows = benchmark(build)
    print()
    print(format_table(rows, ["problem", "Bp-L1", "L1-Tran", "speedup"],
                       title="Ablation — transposed projection on the L1 read path"))
    assert all(r["speedup"] > 1.0 for r in rows)


def test_ablation_symmetry_halving(benchmark, bench_geometry, bench_filtered):
    """Theorem-1 symmetry: identical results, roughly half the inner products."""
    subset = bench_filtered.subset(range(6))

    with_symmetry = benchmark(
        backproject_proposed, subset, bench_geometry, use_symmetry=True
    )
    without = backproject_proposed(subset, bench_geometry, use_symmetry=False)
    np.testing.assert_allclose(with_symmetry.data, without.data, atol=1e-5)


def test_ablation_overlap_vs_serial_pipeline(benchmark):
    """Pipelining (Eq. 17 max) vs a serial pipeline (sum of the same terms)."""
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)

    def build():
        rows = []
        for gpus in (32, 64, 128, 256, 512, 1024, 2048):
            b = model.breakdown(PROBLEM_4K, rows=32, columns=gpus // 32)
            serial = b.t_load + b.t_flt + b.t_allgather + b.t_bp
            rows.append(
                {
                    "N_gpus": gpus,
                    "overlapped T_compute": b.t_compute,
                    "serial T_compute": serial,
                    "saving": serial / b.t_compute,
                }
            )
        return rows

    rows = benchmark(build)
    print()
    print(format_table(rows, ["N_gpus", "overlapped T_compute", "serial T_compute", "saving"],
                       title="Ablation — three-thread overlap vs serial stages"))
    # Overlapping always helps, and by a factor comparable to the paper's delta (1.2-1.6).
    assert all(1.0 < r["saving"] < 3.5 for r in rows)


def test_ablation_r_selection(benchmark):
    """Section 4.1.5: minimizing R (maximizing C) minimizes the runtime."""
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)

    def build():
        rows = []
        for r in (32, 64, 128, 256):
            c = 256 // r
            b = model.breakdown(PROBLEM_4K, rows=r, columns=c)
            rows.append({"R": r, "C": c, "T_compute": b.t_compute, "T_runtime": b.t_runtime})
        return rows

    rows = benchmark(build)
    print()
    print(format_table(rows, ["R", "C", "T_compute", "T_runtime"],
                       title="Ablation — choice of R for the 4K problem on 256 GPUs"))
    # Section 4.1.5: minimizing R (maximizing C) minimizes the overlapped
    # compute phase, because each column's sub-task shrinks with C.
    computes = [r["T_compute"] for r in rows]
    assert computes[0] == min(computes)
    assert computes == sorted(computes)


def test_ablation_store_stripe_tuning(benchmark):
    """Slice-size / striping knob of the volume store (Section 4.1.3)."""

    def build():
        config = PFSConfig()
        slice_bytes = 4096 * 4096 * 4  # one Z slice of the 4K volume
        rows = []
        for slices_per_file in (1, 4, 16, 64):
            nbytes = slice_bytes * slices_per_file
            files = 4096 // slices_per_file
            rows.append(
                {
                    "slices/file": slices_per_file,
                    "file size (MiB)": nbytes / 2**20,
                    "modelled store (s)": files * config.write_seconds(nbytes),
                }
            )
        return rows

    rows = benchmark(build)
    print()
    print(format_table(rows, ["slices/file", "file size (MiB)", "modelled store (s)"],
                       title="Ablation — output slice size vs PFS striping"))
    times = [r["modelled store (s)"] for r in rows]
    # Larger files engage more stripes: the paper's per-slice layout leaves
    # throughput on the table, which is exactly its "room for improvement" note.
    assert times[-1] <= times[0]
