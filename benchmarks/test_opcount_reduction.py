"""Section 3.2.2: the 1/6 reduction in projection-coordinate computation."""

from __future__ import annotations

import pytest

from repro.bench import TABLE4_PROBLEMS, format_table
from repro.core.backprojection import operation_counts, projection_compute_reduction


def test_opcount_reduction_approaches_one_sixth(benchmark):
    def build():
        rows = []
        for problem in TABLE4_PROBLEMS:
            std = operation_counts(problem, "standard")
            new = operation_counts(problem, "proposed")
            rows.append(
                {
                    "problem": str(problem),
                    "standard inner products": std.inner_products,
                    "proposed inner products": new.inner_products,
                    "ratio": projection_compute_reduction(problem),
                }
            )
        return rows

    rows = benchmark(build)
    print()
    print(
        format_table(
            rows,
            ["problem", "standard inner products", "proposed inner products", "ratio"],
            title="Projection-computation reduction (paper claim: 1/6)",
            float_format="{:.4f}",
        )
    )
    for row in rows:
        # The reduction approaches 1/6 from above; the per-column terms only
        # matter for very shallow volumes (none in Table 4).
        assert 1 / 6 <= row["ratio"] < 0.21
    deep = [r for r in rows if r["problem"].endswith("2048")]
    assert all(r["ratio"] == pytest.approx(1 / 6, rel=0.01) for r in deep)
