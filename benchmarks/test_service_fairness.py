"""Fair-share benchmark: an aggressor tenant must not starve the victim.

Replays a heavily skewed two-tenant workload — the aggressor submits ten
times the victim's load — through the reconstruction service under naive
FIFO and under the weighted fair-share queue (DRR + aging).  Under FIFO
the victim's jobs wait behind the aggressor's backlog, so its p99 latency
tracks the aggressor's queue depth; under fair-share the victim's small
flow is interleaved at its weighted share and its tail collapses.  The
acceptance gate: the victim's p99 under fair-share is at most half its
FIFO p99.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.service import AdmissionPolicy, ReconstructionService, synthetic_trace

CLUSTER_GPUS = 16
N_JOBS = 2000
SEED = 0
AGGRESSOR_LOAD = 10.0  # aggressor submits 10x the victim's job volume

pytestmark = [pytest.mark.slow, pytest.mark.fairness]


def _skewed_trace():
    return synthetic_trace(
        N_JOBS,
        cluster_gpus=CLUSTER_GPUS,
        seed=SEED,
        heavy_fraction=0.0,  # interactive-only: tail latency is pure queueing
        mean_interarrival_seconds=0.25,  # sustained overload
        tenant_mix={"aggressor": AGGRESSOR_LOAD, "victim": 1.0},
    )


def _replay(policy: str, admission: AdmissionPolicy):
    trace = _skewed_trace()
    service = ReconstructionService(
        CLUSTER_GPUS, policy=policy, admission=admission
    )
    return service.replay(trace).summary


def _both():
    deep = dict(max_depth=N_JOBS + 1)  # admission never interferes
    return {
        "fifo": _replay("fifo", AdmissionPolicy(**deep)),
        "fair": _replay("slo", AdmissionPolicy(
            **deep, fair_share=True, quantum_seconds=5.0, aging_seconds=600.0,
        )),
    }


def test_fair_share_protects_the_victim_tenant(benchmark):
    summaries = benchmark(_both)
    fifo, fair = summaries["fifo"], summaries["fair"]

    keys = (
        "tenant[victim]_p99_s",
        "tenant[aggressor]_p99_s",
        "latency_p99_s",
        "latency_p50_s",
        "throughput_jobs_per_s",
        "slo_attainment",
    )
    rows = [
        {"metric": key, "fair-share": fair[key], "fifo": fifo[key]}
        for key in keys
    ]
    rows.append({
        "metric": "fairness_index",
        "fair-share": fair.get("fairness_index", float("nan")),
        "fifo": float("nan"),
    })
    print()
    print(format_table(
        rows, ["metric", "fair-share", "fifo"],
        title=(f"Aggressor ({AGGRESSOR_LOAD:.0f}x load) vs victim on "
               f"{CLUSTER_GPUS} GPUs — {N_JOBS}-job trace (seed {SEED})"),
        float_format="{:.3f}",
    ))

    # Both policies serve the full trace (admission is out of the way).
    assert fifo["jobs_completed"] == N_JOBS
    assert fair["jobs_completed"] == N_JOBS

    # The acceptance headline: fair-share at least halves the victim's
    # FIFO tail latency despite the 10x aggressor.
    victim_fifo = fifo["tenant[victim]_p99_s"]
    victim_fair = fair["tenant[victim]_p99_s"]
    assert victim_fair <= 0.5 * victim_fifo, (
        f"victim p99 {victim_fair:.1f}s under fair-share vs "
        f"{victim_fifo:.1f}s under FIFO"
    )

    # Equal weights: the per-tenant service shares cannot be hogged, so the
    # weight-normalized fairness index stays near its 10:1-offered floor.
    assert fair["fairness_index"] > 0.5
