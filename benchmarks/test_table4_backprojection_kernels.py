"""Table 4: back-projection kernel throughput (GUPS) on a Tesla V100.

The at-scale GUPS values come from the calibrated GPU cost model (no GPU is
available here); the functional part of the benchmark measures the actual
NumPy execution of the two algorithms on a scaled-down problem so that
pytest-benchmark records a real timing for the proposed-vs-standard
comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import TABLE4_PROBLEMS, format_table, paper_reference_table4
from repro.core.backprojection import backproject_proposed, backproject_standard
from repro.gpusim import KERNEL_VARIANTS, predict_table4

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default


def test_table4_model_reproduces_paper_shape(benchmark):
    """Regenerate Table 4 from the cost model and check its qualitative shape."""
    rows = benchmark(predict_table4, TABLE4_PROBLEMS)

    printable = []
    agreements = []
    for row in rows:
        problem = row["problem"]
        reference = paper_reference_table4[problem]
        out = {"problem": problem, "alpha": row["alpha"]}
        for kernel in KERNEL_VARIANTS:
            out[kernel.name] = row[kernel.name]
            out[f"{kernel.name} (paper)"] = (
                float("nan") if reference[kernel.name] is None else reference[kernel.name]
            )
            if reference[kernel.name] is not None and row[kernel.name] == row[kernel.name]:
                agreements.append(row[kernel.name] / reference[kernel.name])
        printable.append(out)

    columns = ["problem", "alpha"]
    for kernel in KERNEL_VARIANTS:
        columns += [kernel.name, f"{kernel.name} (paper)"]
    print()
    print(format_table(printable, columns, title="Table 4 — back-projection GUPS (model vs paper)"))
    print(f"model/paper ratio: median {np.median(agreements):.2f}, "
          f"range [{min(agreements):.2f}, {max(agreements):.2f}]")

    by_problem = {r["problem"]: r for r in rows}
    # Headline claim: the proposed kernel beats RTK for the typical (alpha<=1) problems.
    for spec in ("512x512x1024->1024x1024x1024", "1024x1024x1024->1024x1024x1024"):
        assert by_problem[spec]["L1-Tran"] > 1.4 * by_problem[spec]["RTK-32"]
    # Crossover: RTK-32 wins for tiny outputs with huge projections.
    assert (
        by_problem["2048x2048x1024->128x128x128"]["RTK-32"]
        > by_problem["2048x2048x1024->128x128x128"]["L1-Tran"]
    )
    # RTK cannot generate outputs larger than 8 GB (paper's N/A entries).
    assert np.isnan(by_problem["512x512x1024->1024x1024x2048"]["RTK-32"])


@pytest.mark.parametrize("algorithm,fn", [
    ("standard (Algorithm 2 / RTK)", backproject_standard),
    ("proposed (Algorithm 4)", backproject_proposed),
])
def test_backprojection_measured_throughput(benchmark, bench_geometry, bench_filtered, algorithm, fn):
    """Measured GUPS of the two algorithms on this machine (scaled-down problem)."""
    subset = bench_filtered.subset(range(8))
    volume = benchmark(fn, subset, bench_geometry)
    assert np.all(np.isfinite(volume.data))
    updates = bench_geometry.nx * bench_geometry.ny * bench_geometry.nz * subset.np_
    if benchmark.stats is not None:  # absent when run with --benchmark-disable
        gups = updates / (benchmark.stats["mean"] * 2**30)
        print(f"\n{algorithm}: {gups:.3f} GUPS (CPU/NumPy, {updates} updates)")
