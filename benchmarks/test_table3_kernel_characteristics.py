"""Table 3: characteristics of the back-projection kernel variants."""

from __future__ import annotations

from repro.bench import format_table
from repro.gpusim import KERNEL_VARIANTS


def test_table3_kernel_characteristics(benchmark):
    """Regenerate the Table 3 characteristics matrix."""

    def build():
        rows = []
        for kernel in KERNEL_VARIANTS:
            row = {"Kernel": kernel.name}
            row.update(
                {k: ("yes" if v else "no") for k, v in kernel.characteristics().items()}
            )
            rows.append(row)
        return rows

    rows = benchmark(build)
    print()
    print(
        format_table(
            rows,
            ["Kernel", "Texture cache", "L1 cache", "Transpose projection", "Transpose volume"],
            title="Table 3 — kernel characteristics",
        )
    )
    # The defining characteristics the paper calls out.
    by_name = {r["Kernel"]: r for r in rows}
    assert by_name["RTK-32"]["Transpose volume"] == "no"
    assert by_name["L1-Tran"]["L1 cache"] == "yes"
    assert by_name["Bp-L1"]["Texture cache"] == "no"
    assert by_name["Tex-Tran"]["Transpose projection"] == "yes"
