"""Figure 7: the MPI-Reduce volume composition example (R=4, C=4, 16 GPUs).

The paper's Figure 7 shows the sub-volumes produced by a 16-rank (4x4) run
being reduced across each row into the final 2048^3 volume.  The functional
equivalent here runs the same 4x4 grid at laptop scale and verifies that the
reduced volume equals the single-node reconstruction, which is exactly what
the figure demonstrates visually.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EllipsoidPhantom,
    default_geometry_for_problem,
    forward_project_analytic,
    reconstruct_fdk,
    shepp_logan_ellipsoids,
)
from repro.pipeline import IFDKConfig, IFDKFramework

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default


def test_fig7_volume_reduction_4x4_grid(benchmark):
    geometry = default_geometry_for_problem(nu=48, nv=48, np_=16, nx=32, ny=32, nz=32)
    stack = forward_project_analytic(EllipsoidPhantom(shepp_logan_ellipsoids()), geometry)
    reference = reconstruct_fdk(stack, geometry)
    config = IFDKConfig(geometry=geometry, rows=4, columns=4)

    def run():
        return IFDKFramework(config).reconstruct(stack)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # The reduction produced the same volume as a single-node reconstruction.
    np.testing.assert_allclose(result.volume.data, reference.data, atol=1e-4)
    # Each row root stored one of the four Z slabs.
    slabs = sorted(r.stored_slab for r in result.rank_results if r.stored_slab)
    assert slabs == [(0, 8), (8, 16), (16, 24), (24, 32)]
    # Every rank reduced its partial sub-volume exactly once per row (C - 1
    # partners), which is the communication pattern drawn in Figure 7.
    assert len(result.rank_results) == 16
    print(f"\n4x4 grid functional run: wall {result.wall_seconds:.2f} s, "
          f"GUPS {result.gups:.4f}, modelled at ABCI scale {result.modelled.t_runtime:.1f} s")
