"""Table 5: breakdown of T_compute for the 4K and 8K strong-scaling runs."""

from __future__ import annotations

import pytest

from repro.bench import PROBLEM_4K, PROBLEM_8K, format_table
from repro.pipeline import ABCI_MICROBENCHMARKS, IFDKPerformanceModel

#: The paper's Table 5 (T_flt upper bounds, T_AllGather, T_bp, T_compute, delta).
PAPER_TABLE5 = {
    ("4096^3", 32): dict(t_allgather=31.4, t_bp=54.8, t_compute=70.2, delta=1.2),
    ("4096^3", 64): dict(t_allgather=20.7, t_bp=27.5, t_compute=35.6, delta=1.4),
    ("4096^3", 128): dict(t_allgather=15.2, t_bp=14.0, t_compute=18.9, delta=1.6),
    ("4096^3", 256): dict(t_allgather=7.4, t_bp=7.0, t_compute=10.2, delta=1.5),
    ("8192^3", 256): dict(t_allgather=46.9, t_bp=83.0, t_compute=101.3, delta=1.3),
    ("8192^3", 512): dict(t_allgather=26.9, t_bp=41.5, t_compute=53.1, delta=1.3),
    ("8192^3", 1024): dict(t_allgather=17.0, t_bp=20.8, t_compute=29.7, delta=1.3),
    ("8192^3", 2048): dict(t_allgather=8.6, t_bp=10.4, t_compute=17.2, delta=1.2),
}


def _build_rows():
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)
    rows = []
    for (volume, gpus), paper in PAPER_TABLE5.items():
        problem = PROBLEM_4K if volume == "4096^3" else PROBLEM_8K
        r = 32 if volume == "4096^3" else 256
        c = gpus // r
        breakdown = model.breakdown(problem, rows=r, columns=c)
        rows.append(
            {
                "volume": volume,
                "N_gpus": gpus,
                "T_flt": breakdown.t_flt,
                "T_AllGather": breakdown.t_allgather,
                "T_AllGather (paper)": paper["t_allgather"],
                "T_bp": breakdown.t_bp,
                "T_bp (paper)": paper["t_bp"],
                "T_compute (paper)": paper["t_compute"],
                "delta (paper)": paper["delta"],
            }
        )
    return rows


def test_table5_compute_breakdown(benchmark):
    """Regenerate Table 5's overlapped-compute breakdown from the model."""
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            rows,
            [
                "volume", "N_gpus", "T_flt", "T_AllGather", "T_AllGather (paper)",
                "T_bp", "T_bp (paper)", "T_compute (paper)", "delta (paper)",
            ],
            title="Table 5 — breakdown of T_compute (model vs paper)",
        )
    )
    by_key = {(r["volume"], r["N_gpus"]): r for r in rows}
    for key, paper in PAPER_TABLE5.items():
        row = by_key[key]
        # T_flt is tiny (the paper reports <0.7-1.4 s everywhere).
        assert row["T_flt"] < 3.0
        # The back-projection term tracks the paper within ~40%; the AllGather
        # term is looser (the ideal model halves per column added, while the
        # measured collective saturates under fabric contention at high C).
        assert row["T_AllGather"] == pytest.approx(paper["t_allgather"], rel=0.6)
        assert row["T_bp"] == pytest.approx(paper["t_bp"], rel=0.4)
        # And both shrink as GPUs are added (strong scaling).
    for volume, r in (("4096^3", 32), ("8192^3", 256)):
        series = [by_key[(volume, g)]["T_bp"] for g in sorted(
            gpus for vol, gpus in PAPER_TABLE5 if vol == volume
        )]
        assert all(b < a for a, b in zip(series, series[1:]))
