"""Service-layer benchmark: SLO-aware packing vs. naive FIFO scheduling.

Replays the synthetic mixed Table-4 workload trace (interactive 1024-
projection scans plus heavy 2K reconstructions, the Figure 6 problem)
through the reconstruction service under both scheduling policies on a
16-GPU simulated cluster, and reports the operator-facing KPIs side by
side.  The headline result the serving layer exists for: the SLO-aware
scheduler beats naive FIFO on p99 latency and SLO attainment because it
right-sizes each job's ``(R, C)`` grid and backfills small jobs around
heavy ones instead of serializing the whole cluster behind them.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.service import ReconstructionService, synthetic_trace

CLUSTER_GPUS = 16
N_JOBS = 24
SEED = 0

_REPORT_KEYS = (
    "throughput_jobs_per_s",
    "aggregate_gups",
    "latency_p50_s",
    "latency_p99_s",
    "slo_attainment",
    "queue_depth_max",
    "cache_hit_rate",
    "gpu_utilization",
)

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default


def _replay(policy: str):
    trace = synthetic_trace(N_JOBS, cluster_gpus=CLUSTER_GPUS, seed=SEED)
    service = ReconstructionService(CLUSTER_GPUS, policy=policy)
    return service.replay(trace).summary


def _both_policies():
    return {policy: _replay(policy) for policy in ("slo", "fifo")}


def test_service_throughput_slo_vs_fifo(benchmark):
    summaries = benchmark(_both_policies)
    slo, fifo = summaries["slo"], summaries["fifo"]

    rows = [
        {"metric": key, "slo": slo[key], "fifo": fifo[key]}
        for key in _REPORT_KEYS
    ]
    print()
    print(format_table(
        rows, ["metric", "slo", "fifo"],
        title=(f"Service scheduling on {CLUSTER_GPUS} GPUs — "
               f"{N_JOBS}-job mixed Table-4 trace (seed {SEED})"),
        float_format="{:.3f}",
    ))

    # Every job of the trace is servable on this cluster under both policies.
    assert slo["jobs_completed"] == N_JOBS
    assert fifo["jobs_completed"] == N_JOBS

    # The acceptance headline: SLO-aware packing beats naive FIFO's
    # head-of-line blocking on tail latency and on SLO attainment.
    assert slo["latency_p99_s"] < fifo["latency_p99_s"]
    assert slo["latency_p50_s"] < fifo["latency_p50_s"]
    assert slo["slo_attainment"] > fifo["slo_attainment"]

    # Packing also wins aggregate throughput (no idle GPUs behind the head).
    assert slo["throughput_jobs_per_s"] >= fifo["throughput_jobs_per_s"]

    # Repeat datasets in the trace must actually hit the filtered cache.
    assert slo["cache_hit_rate"] > 0
