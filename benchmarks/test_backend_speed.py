"""Backend speed micro-benchmark: reference vs vectorized vs blocked.

The paper's pitch is a back-projection that is arithmetically identical but
far cheaper; the backend seam exists so the repo can keep making that trade
safely.  This benchmark pins a real hot-path number to it: the proposed
back-projection (Algorithm 4) of a 64³ volume from 128 projections, timed
on every registered backend, with the conformance suite guaranteeing the
outputs agree.  The results are written to ``BENCH_backend_speed.json`` at
the repo root so future PRs can track the hot path instead of guessing.

The assertion — ``vectorized`` strictly beats ``reference`` — is the
acceptance bar for this PR's tentpole and the regression tripwire for any
later change to the fast kernels.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES, get_backend
from repro.core import default_geometry_for_problem
from repro.core.types import ProjectionStack, ReconstructionProblem

# slow: wall-clock assertions don't belong in the blocking tier-1 suite
# (they flake under load/coverage instrumentation); the CI benchmarks job
# and `pytest -m bench -o addopts=` run them.
pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_backend_speed.json"

#: The 64³ / 128-projection hot-path problem of the acceptance criterion.
PROBLEM = ReconstructionProblem(nu=96, nv=96, np_=128, nx=64, ny=64, nz=64)


def _best_seconds(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_speed_vectorized_beats_reference():
    geometry = default_geometry_for_problem(
        nu=PROBLEM.nu, nv=PROBLEM.nv, np_=PROBLEM.np_,
        nx=PROBLEM.nx, ny=PROBLEM.ny, nz=PROBLEM.nz,
    )
    rng = np.random.default_rng(0)
    stack = ProjectionStack(
        data=rng.standard_normal(
            (PROBLEM.np_, PROBLEM.nv, PROBLEM.nu)
        ).astype(np.float32),
        angles=geometry.angles,
        filtered=True,  # back-projection only: this is the hot path
    )

    results = {}
    for name in BACKEND_NAMES:
        backend = get_backend(name)
        # One small warm-up reconstruction (grid caches, FFT plans).
        backend.backproject(
            stack.subset(range(2)), geometry, algorithm="proposed",
            z_range=(0, 4),
        )
        repeats = 1 if name == "reference" else 2
        seconds = _best_seconds(
            lambda b=backend: b.backproject(stack, geometry, algorithm="proposed"),
            repeats=repeats,
        )
        results[name] = {
            "seconds": seconds,
            "gups": PROBLEM.gups(seconds),
        }

    record = {
        "benchmark": "proposed back-projection (Algorithm 4), hot path only",
        "problem": str(PROBLEM),
        "updates": PROBLEM.updates,
        "backends": results,
        "speedup_vectorized_over_reference": (
            results["reference"]["seconds"] / results["vectorized"]["seconds"]
        ),
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    assert results["vectorized"]["seconds"] < results["reference"]["seconds"], (
        "vectorized backend must beat reference on the 64^3/128-projection "
        f"micro-benchmark: {record}"
    )
