"""Backend speed micro-benchmark: reference vs vectorized/blocked vs parallel.

The paper's pitch is a back-projection that is arithmetically identical but
far cheaper; the backend seam exists so the repo can keep making that trade
safely.  This benchmark pins a real hot-path number to it: the proposed
back-projection (Algorithm 4) of a 64³ volume from 128 projections, timed
on every registered backend plus an explicit 4-worker ``parallel`` run,
with the conformance suite guaranteeing all outputs agree (bit-identically,
within the vectorized family).  The results are written to
``BENCH_backend_speed.json`` at the repo root so future PRs can track the
hot path instead of guessing.  Each run also *appends* a trajectory entry
(git sha, UTC date, host cpu count, per-backend GUPS) to the record's
``history`` list; ``tests/test_bench_trajectory.py`` fails tier-1 if the
newest entry regresses more than 25% against the previous entry measured
on the same host profile.

Two assertions gate the record:

* ``vectorized`` strictly beats ``reference`` — the PR 2 acceptance bar and
  the regression tripwire for the fast kernels;
* ``parallel`` with 4 workers is at least 2× faster than ``blocked`` — the
  multicore tentpole's bar — asserted only when the host actually has ≥ 4
  cores (thread parallelism cannot manufacture cores; on smaller hosts the
  record still tracks the measured speedup and a bounded-overhead check
  keeps the dispatch cost honest).
"""

from __future__ import annotations

import datetime
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES, ParallelBackend, get_backend
from repro.bench.trajectory import HISTORY_LIMIT, git_sha, trajectory_entry
from repro.core import default_geometry_for_problem
from repro.core.types import ProjectionStack, ReconstructionProblem

# slow: wall-clock assertions don't belong in the blocking tier-1 suite
# (they flake under load/coverage instrumentation); the CI benchmarks job
# and `pytest -m bench -o addopts=` run them.
pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_backend_speed.json"

#: The 64³ / 128-projection hot-path problem of the acceptance criterion.
PROBLEM = ReconstructionProblem(nu=96, nv=96, np_=128, nx=64, ny=64, nz=64)

#: Worker count of the recorded parallel run (the acceptance criterion's).
PARALLEL_WORKERS = 4

#: Multicore dispatch must not cost more than this on a core-starved host.
MAX_PARALLEL_OVERHEAD = 1.5


def _best_seconds(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_speed_records_parallel_speedup():
    geometry = default_geometry_for_problem(
        nu=PROBLEM.nu, nv=PROBLEM.nv, np_=PROBLEM.np_,
        nx=PROBLEM.nx, ny=PROBLEM.ny, nz=PROBLEM.nz,
    )
    rng = np.random.default_rng(0)
    stack = ProjectionStack(
        data=rng.standard_normal(
            (PROBLEM.np_, PROBLEM.nv, PROBLEM.nu)
        ).astype(np.float32),
        angles=geometry.angles,
        filtered=True,  # back-projection only: this is the hot path
    )

    def timed(backend, repeats):
        # One small warm-up reconstruction (grid caches, FFT plans, pool).
        backend.backproject(
            stack.subset(range(2)), geometry, algorithm="proposed",
            z_range=(0, 4),
        )
        seconds = _best_seconds(
            lambda: backend.backproject(stack, geometry, algorithm="proposed"),
            repeats=repeats,
        )
        return {"seconds": seconds, "gups": PROBLEM.gups(seconds)}

    results = {}
    for name in BACKEND_NAMES:
        if name == "parallel":
            continue  # recorded separately with an explicit worker count
        results[name] = timed(get_backend(name), 1 if name == "reference" else 2)
    with ParallelBackend(workers=PARALLEL_WORKERS) as backend:
        results["parallel"] = timed(backend, 2)
        results["parallel"]["workers"] = PARALLEL_WORKERS

    record = {
        "benchmark": "proposed back-projection (Algorithm 4), hot path only",
        "problem": str(PROBLEM),
        "updates": PROBLEM.updates,
        "cpus": os.cpu_count(),
        "backends": results,
        "speedup_vectorized_over_reference": (
            results["reference"]["seconds"] / results["vectorized"]["seconds"]
        ),
        "speedup_parallel_over_blocked": (
            results["blocked"]["seconds"] / results["parallel"]["seconds"]
        ),
    }

    # Carry the trajectory forward: keep the prior record's history (if the
    # file exists and parses) and append this run as the newest entry.
    history = []
    if RESULT_FILE.exists():
        try:
            history = json.loads(RESULT_FILE.read_text()).get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(
        trajectory_entry(
            record,
            sha=git_sha(REPO_ROOT),
            date=datetime.datetime.now(datetime.timezone.utc).strftime(
                "%Y-%m-%d"
            ),
        )
    )
    record["history"] = history[-HISTORY_LIMIT:]

    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    assert results["vectorized"]["seconds"] < results["reference"]["seconds"], (
        "vectorized backend must beat reference on the 64^3/128-projection "
        f"micro-benchmark: {record}"
    )
    assert results["parallel"]["seconds"] <= (
        MAX_PARALLEL_OVERHEAD * results["blocked"]["seconds"]
    ), f"parallel dispatch overhead exceeds {MAX_PARALLEL_OVERHEAD}x: {record}"
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert record["speedup_parallel_over_blocked"] >= 2.0, (
            f"parallel (workers={PARALLEL_WORKERS}) must be >= 2x faster than "
            f"blocked on a >= {PARALLEL_WORKERS}-core host: {record}"
        )
