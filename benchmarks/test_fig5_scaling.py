"""Figures 5a-5d: strong and weak scaling of iFDK (measured vs theoretical peak).

The stacked bars of Figure 5 decompose the end-to-end runtime into
T_compute, T_D2H, T_reduce and T_store.  The "theoretical peak" series of
the paper is exactly the performance model of Section 4.2, which is what is
regenerated here; a scaled-down functional run validates that the same
configuration objects actually execute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    format_table,
    scaled_for_functional_run,
    strong_scaling_4k,
    strong_scaling_8k,
    weak_scaling_4k,
    weak_scaling_8k,
)
from repro.core import default_geometry_for_problem, forward_project_analytic, uniform_sphere_phantom
from repro.pipeline import ABCI_MICROBENCHMARKS, IFDKConfig, IFDKFramework, IFDKPerformanceModel

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default

#: Paper Figure 5a/5b measured T_compute values (seconds) for reference.
PAPER_5A_COMPUTE = {32: 70.2, 64: 35.6, 128: 18.9, 256: 10.2, 512: 5.6, 1024: 3.3, 2048: 2.1}
PAPER_5B_COMPUTE = {256: 101.3, 512: 53.1, 1024: 29.7, 2048: 17.2}
#: Paper Figure 5c/5d measured T_compute values (seconds, roughly constant).
PAPER_5C_COMPUTE = {32: 9.9, 64: 10.0, 128: 10.1, 256: 10.8, 512: 10.9, 1024: 11.0, 2048: 11.0}
PAPER_5D_COMPUTE = {256: 28.9, 512: 29.1, 1024: 30.0, 2048: 30.6}


def _stacked_rows(workloads, paper_compute):
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)
    rows = []
    for w in workloads:
        b = model.breakdown(w.problem, rows=w.rows, columns=w.columns)
        rows.append(
            {
                "N_gpus": w.n_gpus,
                "T_compute": b.t_compute,
                "T_compute (paper)": paper_compute.get(w.n_gpus, float("nan")),
                "T_D2H": b.t_d2h,
                "T_reduce": b.t_reduce,
                "T_store": b.t_store,
                "T_runtime": b.t_runtime,
            }
        )
    return rows


_COLUMNS = ["N_gpus", "T_compute", "T_compute (paper)", "T_D2H", "T_reduce", "T_store", "T_runtime"]


def test_fig5a_strong_scaling_4k(benchmark):
    rows = benchmark(_stacked_rows, strong_scaling_4k(), PAPER_5A_COMPUTE)
    print()
    print(format_table(rows, _COLUMNS, title="Figure 5a — strong scaling, 4K (R=32)"))
    compute = [r["T_compute"] for r in rows]
    # Strong scaling: T_compute falls roughly with 1/N_gpus until T_post dominates.
    assert all(b < a for a, b in zip(compute, compute[1:]))
    assert compute[0] / compute[-1] > 20
    # T_post terms are constant across the sweep (R fixed).
    assert len({round(r["T_store"], 3) for r in rows}) == 1
    # End-to-end: the paper solves 4K within ~30 s at 2,048 GPUs.
    assert rows[-1]["T_runtime"] < 35.0


def test_fig5b_strong_scaling_8k(benchmark):
    rows = benchmark(_stacked_rows, strong_scaling_8k(), PAPER_5B_COMPUTE)
    print()
    print(format_table(rows, _COLUMNS, title="Figure 5b — strong scaling, 8K (R=256)"))
    compute = [r["T_compute"] for r in rows]
    assert all(b < a for a, b in zip(compute, compute[1:]))
    # The 2 TB store dominates the runtime, as in the paper (~79 s).
    assert rows[-1]["T_store"] > rows[-1]["T_compute"]
    # Paper: 8K solved within ~2 minutes at 2,048 GPUs.
    assert rows[-1]["T_runtime"] < 160.0


def test_fig5c_weak_scaling_4k(benchmark):
    rows = benchmark(_stacked_rows, weak_scaling_4k(), PAPER_5C_COMPUTE)
    print()
    print(format_table(rows, _COLUMNS, title="Figure 5c — weak scaling, 4K (Np = 16*N_gpus)"))
    compute = [r["T_compute"] for r in rows]
    # Weak scaling: per-GPU work constant, so T_compute stays flat (within 25%).
    assert max(compute) / min(compute) < 1.25


def test_fig5d_weak_scaling_8k(benchmark):
    rows = benchmark(_stacked_rows, weak_scaling_8k(), PAPER_5D_COMPUTE)
    print()
    print(format_table(rows, _COLUMNS, title="Figure 5d — weak scaling, 8K (Np = 4*N_gpus)"))
    compute = [r["T_compute"] for r in rows]
    assert max(compute) / min(compute) < 1.25


def test_fig5_functional_scaled_down_run(benchmark):
    """Execute one strong-scaling point end-to-end at laptop scale.

    This validates that the configurations behind Figure 5 actually run
    through the full distributed pipeline (PFS load, filtering, AllGather,
    back-projection, Reduce, store) and produce a correct volume.
    """
    workload = strong_scaling_4k()[0]
    problem, rows, columns = scaled_for_functional_run(workload, max_ranks=8, max_volume=32,
                                                       max_detector=48, max_projections=16)
    geometry = default_geometry_for_problem(
        nu=problem.nu, nv=problem.nv, np_=problem.np_,
        nx=problem.nx, ny=problem.ny, nz=problem.nz,
    )
    stack = forward_project_analytic(uniform_sphere_phantom(), geometry)
    config = IFDKConfig(geometry=geometry, rows=rows, columns=columns)

    def run():
        return IFDKFramework(config).reconstruct(stack)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(np.isfinite(result.volume.data))
    # The reconstructed sphere centre should be close to its true density 1.0.
    center = result.volume.data[problem.nz // 2, problem.ny // 2, problem.nx // 2]
    assert center == pytest.approx(1.0, abs=0.3)
    print(f"\nfunctional run: {result.wall_seconds:.2f} s wall, "
          f"{result.gups:.4f} GUPS measured, modelled at-scale runtime "
          f"{result.modelled.t_runtime:.1f} s")
