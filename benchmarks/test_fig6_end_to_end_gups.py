"""Figure 6: end-to-end GUPS versus GPU count for three output sizes."""

from __future__ import annotations

import pytest

from repro.bench import figure6_workloads, format_scaling_figure
from repro.pipeline import ABCI_MICROBENCHMARKS, IFDKPerformanceModel

pytestmark = pytest.mark.slow  # paper-scale replay: excluded from tier-1 by default

#: Paper Figure 6 values (GUPS) for reference.
PAPER_FIG6 = {
    "2048^3": {4: 406, 8: 694, 16: 1134, 32: 1680, 64: 2229, 128: 2643,
               256: 2952, 512: 3151, 1024: 3274, 2048: 3244},
    "4096^3": {32: 3495, 64: 5851, 128: 9134, 256: 13240, 512: 17361,
               1024: 20480, 2048: 22599},
    "8192^3": {256: 19778, 512: 33376, 1024: 49863, 2048: 74359},
}


def _series():
    model = IFDKPerformanceModel(ABCI_MICROBENCHMARKS)
    out = {}
    for label, workloads in figure6_workloads().items():
        out[label] = [
            {
                "gpus": w.n_gpus,
                "gups": model.gups(w.problem, rows=w.rows, columns=w.columns),
                "paper": PAPER_FIG6[label].get(w.n_gpus, float("nan")),
            }
            for w in workloads
        ]
    return out


def test_fig6_end_to_end_gups(benchmark):
    series = benchmark(_series)
    print()
    print(format_scaling_figure(series, x_key="gpus", y_key="gups",
                                title="Figure 6 — end-to-end GUPS (model)"))
    print(format_scaling_figure(
        {k: v for k, v in series.items()}, x_key="gpus", y_key="paper",
        title="Figure 6 — end-to-end GUPS (paper)"))

    for label, points in series.items():
        gups = [p["gups"] for p in points]
        # Throughput is non-decreasing with GPU count for every output size.
        assert all(b >= a * 0.999 for a, b in zip(gups, gups[1:])), label
    # The paper's observation: the 8192^3 series scales further than 4096^3
    # (better device utilization), and both exceed the 2048^3 plateau.
    last = {label: points[-1]["gups"] for label, points in series.items()}
    assert last["8192^3"] > last["4096^3"] > last["2048^3"]
    # The 2048^3 series saturates early (its T_post floor dominates sooner):
    # the paper measures only a ~1.2x gain from 128 to 2,048 GPUs; the ideal
    # model keeps a little more headroom, so the bound is looser here.
    s2k = [p["gups"] for p in series["2048^3"]]
    assert s2k[-1] < 2.0 * s2k[len(s2k) // 2]
